"""The vector kernel: fused drivers over the word-array representation.

:func:`run_vector_search` is a drop-in replacement for
:func:`repro.core.engine.kernel.run_search` for the MULE strategy family
(:class:`MuleStrategy`, :class:`TopKStrategy`,
:class:`LargeCliqueStrategy`).  Instead of dispatching through the
strategy protocol once per node, each driver fuses the kernel walk and
the strategy bookkeeping into a single loop over the structures of
:class:`~repro.core.engine.backends.vector_form.VectorForm`:

* **root plans** — every depth-1 frame (candidate lists, factors, masks,
  exclusion survivors) is precompiled per (graph, α) pair, so root
  descents charge their counters and jump straight into the subtree;
* **side-choosing candidate scans** — per node the driver picks the
  cheapest of three ``GenerateI`` realisations: a scan of the (sorted)
  higher-neighbor list, a scan of the remaining candidate tail, or
  extraction from the word-array bitmask intersection, switching on
  which side is smaller (``_SCAN_CUTOFF``);
* **lazy exclusion sets** — ``GenerateX`` materialises the exclusion
  dictionary only for nodes that are descended into; childless nodes run
  an existence-only survivor probe (the O(1) maximality test needs just
  emptiness);
* **flat frames** — node state lives in locals, pushed as tuples only
  when a child actually has candidates.

Parity is the contract, not an aspiration: emitted cliques,
probabilities, stop reasons and **every** statistics counter are
bit-identical to the python backend at every yield point — counter
deltas are flushed immediately before each emission, so streaming
observers cannot tell the backends apart either.  The two drivers
deliberately duplicate their scan code instead of sharing helpers: one
extra function call per node would cost more than the sharing saves
(see ``tests/property/test_property_kernel_parity.py`` for the suite
that enforces the contract).

:class:`NoIncrementalStrategy` is intentionally not implemented here:
DFS-NOIP is the paper's *baseline*, defined by its from-scratch
recomputation — accelerating it would change the experiment.  Requests
resolve it to the python backend (see
:func:`repro.core.engine.backends.resolve_kernel`).
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any
from time import perf_counter

from ....errors import ParameterError
from ...result import SearchStatistics
from ..compiled import CompiledGraph
from ..controls import CancellationToken, RunControls, RunReport, StopReason
from ..strategies import (
    EnumerationStrategy,
    LargeCliqueStrategy,
    MuleStrategy,
    TopKStrategy,
)
from .vector_form import vector_form

__all__ = ["run_vector_search"]

_UNLIMITED = RunControls()

#: Crossover between list scans and bitmask extraction in the candidate
#: generation step.  Below this many elements a plain scan of the shorter
#: side beats building the mask intersection; tuned on the Figure 1 grid.
_SCAN_CUTOFF = 24


def run_vector_search(
    compiled: CompiledGraph,
    alpha: float,
    strategy: EnumerationStrategy,
    *,
    statistics: SearchStatistics | None = None,
    controls: RunControls | None = None,
    report: RunReport | None = None,
    cancel: CancellationToken | None = None,
) -> Iterator[tuple[frozenset[Any], float]]:
    """Run one enumeration on the vector backend; same contract as ``run_search``.

    Only the MULE strategy family is supported; pass anything else (or an
    instance of a subclass the drivers were not written for) and a
    :class:`~repro.errors.ParameterError` is raised eagerly, at call time.
    Dispatch is on the *exact* strategy type — a user subclass may
    override hooks the fused drivers never call, so this function refuses
    it and :func:`resolve_kernel`'s ``auto`` mode routes it to the python
    kernel instead of silently mis-driving it.
    """
    statistics = statistics if statistics is not None else SearchStatistics()
    report = report if report is not None else RunReport()
    controls = controls if controls is not None else _UNLIMITED
    strategy.bind(compiled, alpha, statistics)
    kind = type(strategy)
    if kind is MuleStrategy:
        return _drive_mule(compiled, alpha, 0, statistics, controls, report, cancel)
    if kind is TopKStrategy:
        return _drive_mule(
            compiled, alpha, strategy.min_size, statistics, controls, report, cancel
        )
    if kind is LargeCliqueStrategy:
        return _drive_large(
            compiled,
            alpha,
            strategy.size_threshold,
            statistics,
            controls,
            report,
            cancel,
        )
    raise ParameterError(
        f"the vector kernel does not support strategy "
        f"{type(strategy).__name__!r}; supported: MuleStrategy, "
        f"TopKStrategy, LargeCliqueStrategy (use kernel='python')"
    )


def _drive_mule(
    compiled: CompiledGraph,
    alpha: float,
    emit_min: int,
    statistics: SearchStatistics,
    controls: RunControls,
    report: RunReport,
    cancel: CancellationToken | None = None,
) -> Iterator[tuple[frozenset[Any], float]]:
    """The fused MULE walk; ``emit_min`` is the TopK size floor (0 = MULE)."""
    report.stop_reason = StopReason.COMPLETED
    report.cliques_emitted = 0
    report.frames_expanded = 0
    n = compiled.n
    if n == 0:
        return

    form = vector_form(compiled)
    plan = form.root_plan(alpha)
    plan_cand = plan.cand
    plan_factors = plan.factors
    plan_cand_dict = plan.cand_dict
    plan_cand_mask = plan.cand_mask
    plan_x_factor = plan.x_factor
    plan_x_mask = plan.x_mask
    adj_hi = form.items_higher

    adj_prob = compiled.adjacency_probability
    adj_mask = compiled.adjacency_mask
    higher = compiled.higher_masks
    decode = compiled.decode
    root_mask = compiled.root_mask
    root_restricted = root_mask != compiled.all_mask
    max_cliques = controls.max_cliques
    deadline = (
        perf_counter() + controls.time_budget_seconds
        if controls.time_budget_seconds is not None
        else None
    )
    check_every = controls.check_every_frames
    check_limits = deadline is not None or cancel is not None

    # Counter deltas live in locals and are flushed immediately before
    # every yield (and on any exit), so callers observing ``statistics``
    # or ``report`` mid-stream see exactly the totals the python backend
    # exposes at the same point.  rc/frames start at 1: the root expand.
    rc = 1
    ce = 0
    pm = 0
    mx = 0
    frames_expanded = 1
    cliques_emitted = 0
    frames_since_check = 0

    def flush() -> None:
        statistics.recursive_calls += rc
        statistics.candidates_examined += ce
        statistics.probability_multiplications += pm
        statistics.maximality_checks += mx
        report.frames_expanded = frames_expanded
        report.cliques_emitted = cliques_emitted

    try:
        clique: list[int] = []
        cappend = clique.append
        cpop = clique.pop
        stack: list[tuple[Any, ...]] = []
        push = stack.append
        pop = stack.pop

        for root in range(n):
            # Shard-skipped roots charge no counters (the python kernel
            # never calls the strategy for them) but do advance the
            # time-budget window; their retirement is already encoded in
            # the plan's exclusion sets.
            if root_restricted and not (root_mask >> root) & 1:
                if check_limits:
                    frames_since_check += 1
                    if frames_since_check >= check_every:
                        frames_since_check = 0
                        if cancel is not None and cancel.cancelled:
                            report.stop_reason = StopReason.CANCELLED
                            return
                        if deadline is not None and perf_counter() >= deadline:
                            report.stop_reason = StopReason.TIME_BUDGET
                            return
                continue

            # Root descend.  The root candidate mask is all_mask (retire
            # never clears candidate bits) and exactly ``root`` vertices
            # are retired so far, so the Lemma 10 charge is 1 + n + root
            # without touching a mask.
            ce += 1
            pm += 1 + n + root
            if check_limits:
                frames_since_check += 1
                if frames_since_check >= check_every:
                    frames_since_check = 0
                    if cancel is not None and cancel.cancelled:
                        report.stop_reason = StopReason.CANCELLED
                        return
                    if deadline is not None and perf_counter() >= deadline:
                        report.stop_reason = StopReason.TIME_BUDGET
                        return

            candidates = plan_cand[root]
            ncand = len(candidates)
            excl_mask = plan_x_mask[root]
            rc += 1
            frames_expanded += 1
            if not ncand:
                # Childless root branch: α-maximal iff the exclusion side
                # is empty too; a singleton always has probability 1.
                if not excl_mask:
                    mx += 1
                    if emit_min <= 1:
                        cappend(root)
                        flush()
                        rc = ce = pm = mx = 0
                        yield decode(clique), 1.0
                        cliques_emitted += 1
                        if (
                            max_cliques is not None
                            and cliques_emitted >= max_cliques
                        ):
                            report.stop_reason = StopReason.MAX_CLIQUES
                            return
                        cpop()
                continue

            cappend(root)
            q0 = 1.0
            factors = plan_factors[root]
            cand_dict = plan_cand_dict[root]
            cand_mask = plan_cand_mask[root]
            # The exclusion dictionary is mutated by retirements below;
            # the plan's copy must stay pristine for the next run.
            excl_factor = plan_x_factor[root].copy()
            index = 0

            while True:
                if index < ncand:
                    u = candidates[index]
                    ce += 1
                    q = q0 * factors[index]
                    pm += 1 + ncand + len(excl_factor)

                    # GenerateI, three ways: scan the higher-neighbor
                    # list, scan the candidate tail, or extract from the
                    # bitmask intersection — whichever side is smaller.
                    child_candidates: list[int] = []
                    new_factors: list[float] = []
                    tail = ncand - index - 1
                    hi = adj_hi[u]
                    nhi = len(hi)
                    if tail and nhi:
                        if nhi <= tail and nhi <= _SCAN_CUTOFF:
                            if cand_dict is None:
                                cand_dict = dict(zip(candidates, factors))
                                if not stack:
                                    # Depth-1 frames are the plan's: keep
                                    # the lookup table for future runs.
                                    plan_cand_dict[root] = cand_dict
                            get = cand_dict.get
                            cc_append = child_candidates.append
                            nf_append = new_factors.append
                            for w, p in hi:
                                f = get(w)
                                if f is not None:
                                    factor = f * p
                                    if q * factor >= alpha:
                                        cc_append(w)
                                        nf_append(factor)
                        elif tail <= _SCAN_CUTOFF:
                            get = adj_prob[u].get
                            cc_append = child_candidates.append
                            nf_append = new_factors.append
                            for j in range(index + 1, ncand):
                                w = candidates[j]
                                p = get(w)
                                if p is not None:
                                    factor = factors[j] * p
                                    if q * factor >= alpha:
                                        cc_append(w)
                                        nf_append(factor)
                        else:
                            if cand_dict is None:
                                cand_dict = dict(zip(candidates, factors))
                                if not stack:
                                    plan_cand_dict[root] = cand_dict
                            aprob = adj_prob[u]
                            cc_append = child_candidates.append
                            nf_append = new_factors.append
                            if cand_mask is None:
                                # Candidate masks are built lazily: most
                                # frames never reach this path, so paying
                                # one |= per survivor at every push would
                                # mostly be wasted (the mask equals the
                                # candidate list either way).
                                cand_mask = 0
                                for w in candidates:
                                    cand_mask |= 1 << w
                            m = cand_mask & adj_mask[u] & higher[u]
                            while m:
                                low = m & -m
                                m ^= low
                                w = low.bit_length() - 1
                                factor = cand_dict[w] * aprob[w]
                                if q * factor >= alpha:
                                    cc_append(w)
                                    nf_append(factor)
                    if check_limits:
                        frames_since_check += 1
                        if frames_since_check >= check_every:
                            frames_since_check = 0
                            if cancel is not None and cancel.cancelled:
                                report.stop_reason = StopReason.CANCELLED
                                return
                            if deadline is not None and perf_counter() >= deadline:
                                report.stop_reason = StopReason.TIME_BUDGET
                                return
                    xmask = excl_mask & adj_mask[u]
                    if child_candidates:
                        # GenerateX in full: the child is descended into,
                        # so its exclusion survivors are really needed.
                        new_excl_factor: dict[int, float] = {}
                        new_excl_mask = 0
                        if xmask:
                            aprob = adj_prob[u]
                            m = xmask
                            while m:
                                low = m & -m
                                m ^= low
                                w = low.bit_length() - 1
                                factor = excl_factor[w] * aprob[w]
                                if q * factor >= alpha:
                                    new_excl_factor[w] = factor
                                    new_excl_mask |= low
                        rc += 1
                        frames_expanded += 1
                        cappend(u)
                        push(
                            (
                                q0,
                                candidates,
                                factors,
                                cand_dict,
                                cand_mask,
                                excl_factor,
                                excl_mask,
                                ncand,
                                index,
                            )
                        )
                        q0 = q
                        candidates = child_candidates
                        factors = new_factors
                        cand_dict = None
                        cand_mask = None
                        excl_factor = new_excl_factor
                        excl_mask = new_excl_mask
                        ncand = len(child_candidates)
                        index = 0
                        continue
                    # Childless node: maximality only needs X-emptiness,
                    # so probe for one surviving exclusion and stop.
                    rc += 1
                    frames_expanded += 1
                    x_alive = False
                    if xmask:
                        aprob = adj_prob[u]
                        m = xmask
                        while m:
                            low = m & -m
                            m ^= low
                            w = low.bit_length() - 1
                            if q * (excl_factor[w] * aprob[w]) >= alpha:
                                x_alive = True
                                break
                    if not x_alive:
                        mx += 1
                        if len(clique) + 1 >= emit_min:
                            cappend(u)
                            flush()
                            rc = ce = pm = mx = 0
                            yield decode(clique), q
                            cliques_emitted += 1
                            if (
                                max_cliques is not None
                                and cliques_emitted >= max_cliques
                            ):
                                report.stop_reason = StopReason.MAX_CLIQUES
                                return
                            cpop()
                    excl_factor[u] = factors[index]
                    excl_mask |= 1 << u
                    index += 1
                    continue
                if not stack:
                    cpop()
                    break
                (
                    q0,
                    candidates,
                    factors,
                    cand_dict,
                    cand_mask,
                    excl_factor,
                    excl_mask,
                    ncand,
                    index,
                ) = pop()
                u = candidates[index]
                excl_factor[u] = factors[index]
                excl_mask |= 1 << u
                index += 1
                cpop()
    finally:
        flush()


def _drive_large(
    compiled: CompiledGraph,
    alpha: float,
    size_threshold: int,
    statistics: SearchStatistics,
    controls: RunControls,
    report: RunReport,
    cancel: CancellationToken | None = None,
) -> Iterator[tuple[frozenset[Any], float]]:
    """The fused LARGE-MULE walk (Algorithms 5–6 size bound and pruning)."""
    report.stop_reason = StopReason.COMPLETED
    report.cliques_emitted = 0
    report.frames_expanded = 0
    n = compiled.n
    if n == 0:
        return

    form = vector_form(compiled)
    plan = form.root_plan(alpha)
    plan_cand = plan.cand
    plan_factors = plan.factors
    plan_cand_dict = plan.cand_dict
    plan_cand_mask = plan.cand_mask
    plan_x_factor = plan.x_factor
    plan_x_mask = plan.x_mask
    adj_hi = form.items_higher

    adj_prob = compiled.adjacency_probability
    adj_mask = compiled.adjacency_mask
    higher = compiled.higher_masks
    decode = compiled.decode
    root_mask = compiled.root_mask
    root_restricted = root_mask != compiled.all_mask
    max_cliques = controls.max_cliques
    deadline = (
        perf_counter() + controls.time_budget_seconds
        if controls.time_budget_seconds is not None
        else None
    )
    check_every = controls.check_every_frames
    check_limits = deadline is not None or cancel is not None

    rc = 1
    ce = 0
    pm = 0
    mx = 0
    pb = 0
    frames_expanded = 1
    cliques_emitted = 0
    frames_since_check = 0

    def flush() -> None:
        statistics.recursive_calls += rc
        statistics.candidates_examined += ce
        statistics.probability_multiplications += pm
        statistics.maximality_checks += mx
        statistics.pruned_branches += pb
        report.frames_expanded = frames_expanded
        report.cliques_emitted = cliques_emitted

    try:
        clique: list[int] = []
        cappend = clique.append
        cpop = clique.pop
        stack: list[tuple[Any, ...]] = []
        push = stack.append
        pop = stack.pop

        for root in range(n):
            if root_restricted and not (root_mask >> root) & 1:
                if check_limits:
                    frames_since_check += 1
                    if frames_since_check >= check_every:
                        frames_since_check = 0
                        if cancel is not None and cancel.cancelled:
                            report.stop_reason = StopReason.CANCELLED
                            return
                        if deadline is not None and perf_counter() >= deadline:
                            report.stop_reason = StopReason.TIME_BUDGET
                            return
                continue

            # Root descend.  LARGE-MULE charges the X-side units only when
            # the branch survives the size bound (the pruned path never
            # reaches GenerateX).
            ce += 1
            pm += 1 + n
            candidates = plan_cand[root]
            ncand = len(candidates)
            if 1 + ncand < size_threshold:
                # Algorithm 6, line 8 at the root: even taking every
                # surviving candidate cannot reach size_threshold.
                pb += 1
                if check_limits:
                    frames_since_check += 1
                    if frames_since_check >= check_every:
                        frames_since_check = 0
                        if cancel is not None and cancel.cancelled:
                            report.stop_reason = StopReason.CANCELLED
                            return
                        if deadline is not None and perf_counter() >= deadline:
                            report.stop_reason = StopReason.TIME_BUDGET
                            return
                continue
            pm += root
            if check_limits:
                frames_since_check += 1
                if frames_since_check >= check_every:
                    frames_since_check = 0
                    if cancel is not None and cancel.cancelled:
                        report.stop_reason = StopReason.CANCELLED
                        return
                    if deadline is not None and perf_counter() >= deadline:
                        report.stop_reason = StopReason.TIME_BUDGET
                        return

            # size_threshold >= 2, so a surviving root branch always has
            # at least one candidate: go straight into the subtree.
            rc += 1
            frames_expanded += 1
            cappend(root)
            q0 = 1.0
            factors = plan_factors[root]
            cand_dict = plan_cand_dict[root]
            cand_mask = plan_cand_mask[root]
            excl_factor = plan_x_factor[root].copy()
            excl_mask = plan_x_mask[root]
            index = 0

            while True:
                if index < ncand:
                    u = candidates[index]
                    ce += 1
                    q = q0 * factors[index]
                    pm += 1 + ncand

                    child_candidates: list[int] = []
                    new_factors: list[float] = []
                    tail = ncand - index - 1
                    hi = adj_hi[u]
                    nhi = len(hi)
                    if tail and nhi:
                        if nhi <= tail and nhi <= _SCAN_CUTOFF:
                            if cand_dict is None:
                                cand_dict = dict(zip(candidates, factors))
                                if not stack:
                                    plan_cand_dict[root] = cand_dict
                            get = cand_dict.get
                            cc_append = child_candidates.append
                            nf_append = new_factors.append
                            for w, p in hi:
                                f = get(w)
                                if f is not None:
                                    factor = f * p
                                    if q * factor >= alpha:
                                        cc_append(w)
                                        nf_append(factor)
                        elif tail <= _SCAN_CUTOFF:
                            get = adj_prob[u].get
                            cc_append = child_candidates.append
                            nf_append = new_factors.append
                            for j in range(index + 1, ncand):
                                w = candidates[j]
                                p = get(w)
                                if p is not None:
                                    factor = factors[j] * p
                                    if q * factor >= alpha:
                                        cc_append(w)
                                        nf_append(factor)
                        else:
                            if cand_dict is None:
                                cand_dict = dict(zip(candidates, factors))
                                if not stack:
                                    plan_cand_dict[root] = cand_dict
                            aprob = adj_prob[u]
                            cc_append = child_candidates.append
                            nf_append = new_factors.append
                            if cand_mask is None:
                                # Candidate masks are built lazily: most
                                # frames never reach this path, so paying
                                # one |= per survivor at every push would
                                # mostly be wasted (the mask equals the
                                # candidate list either way).
                                cand_mask = 0
                                for w in candidates:
                                    cand_mask |= 1 << w
                            m = cand_mask & adj_mask[u] & higher[u]
                            while m:
                                low = m & -m
                                m ^= low
                                w = low.bit_length() - 1
                                factor = cand_dict[w] * aprob[w]
                                if q * factor >= alpha:
                                    cc_append(w)
                                    nf_append(factor)

                    if len(clique) + 1 + len(child_candidates) < size_threshold:
                        # Algorithm 6, line 8: the branch is cut before
                        # the exclusion side is charged or built.
                        pb += 1
                        if check_limits:
                            frames_since_check += 1
                            if frames_since_check >= check_every:
                                frames_since_check = 0
                                if cancel is not None and cancel.cancelled:
                                    report.stop_reason = StopReason.CANCELLED
                                    return
                                if deadline is not None and perf_counter() >= deadline:
                                    report.stop_reason = StopReason.TIME_BUDGET
                                    return
                        excl_factor[u] = factors[index]
                        excl_mask |= 1 << u
                        index += 1
                        continue
                    pm += len(excl_factor)
                    if check_limits:
                        frames_since_check += 1
                        if frames_since_check >= check_every:
                            frames_since_check = 0
                            if cancel is not None and cancel.cancelled:
                                report.stop_reason = StopReason.CANCELLED
                                return
                            if deadline is not None and perf_counter() >= deadline:
                                report.stop_reason = StopReason.TIME_BUDGET
                                return
                    xmask = excl_mask & adj_mask[u]
                    if child_candidates:
                        new_excl_factor: dict[int, float] = {}
                        new_excl_mask = 0
                        if xmask:
                            aprob = adj_prob[u]
                            m = xmask
                            while m:
                                low = m & -m
                                m ^= low
                                w = low.bit_length() - 1
                                factor = excl_factor[w] * aprob[w]
                                if q * factor >= alpha:
                                    new_excl_factor[w] = factor
                                    new_excl_mask |= low
                        rc += 1
                        frames_expanded += 1
                        cappend(u)
                        push(
                            (
                                q0,
                                candidates,
                                factors,
                                cand_dict,
                                cand_mask,
                                excl_factor,
                                excl_mask,
                                ncand,
                                index,
                            )
                        )
                        q0 = q
                        candidates = child_candidates
                        factors = new_factors
                        cand_dict = None
                        cand_mask = None
                        excl_factor = new_excl_factor
                        excl_mask = new_excl_mask
                        ncand = len(child_candidates)
                        index = 0
                        continue
                    rc += 1
                    frames_expanded += 1
                    x_alive = False
                    if xmask:
                        aprob = adj_prob[u]
                        m = xmask
                        while m:
                            low = m & -m
                            m ^= low
                            w = low.bit_length() - 1
                            if q * (excl_factor[w] * aprob[w]) >= alpha:
                                x_alive = True
                                break
                    if not x_alive:
                        mx += 1
                        if len(clique) + 1 >= size_threshold:
                            cappend(u)
                            flush()
                            rc = ce = pm = mx = pb = 0
                            yield decode(clique), q
                            cliques_emitted += 1
                            if (
                                max_cliques is not None
                                and cliques_emitted >= max_cliques
                            ):
                                report.stop_reason = StopReason.MAX_CLIQUES
                                return
                            cpop()
                    excl_factor[u] = factors[index]
                    excl_mask |= 1 << u
                    index += 1
                    continue
                if not stack:
                    cpop()
                    break
                (
                    q0,
                    candidates,
                    factors,
                    cand_dict,
                    cand_mask,
                    excl_factor,
                    excl_mask,
                    ncand,
                    index,
                ) = pop()
                u = candidates[index]
                excl_factor[u] = factors[index]
                excl_mask |= 1 << u
                index += 1
                cpop()
    finally:
        flush()
