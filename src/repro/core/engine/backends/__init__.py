"""Engine kernel backends: the python reference kernel and the vector kernel.

The engine has two interchangeable implementations of the enumeration
hot path:

``python``
    The reference: :func:`~repro.core.engine.kernel.run_search` driving a
    pluggable :class:`~repro.core.engine.strategies.EnumerationStrategy`.
    Supports every strategy, including user-defined ones.
``vector``
    The fused drivers of
    :mod:`~repro.core.engine.backends.vector_kernel` over the uint64
    word-array representation of
    :mod:`~repro.core.engine.backends.vector_form`.  Supports exactly the
    MULE family (:class:`MuleStrategy`, :class:`TopKStrategy`,
    :class:`LargeCliqueStrategy`) and is bit-identical to the python
    kernel on them — cliques, probabilities, stop reasons and statistics.

The kernel axis is deliberately independent of the parallel *execution*
backend (``process``/``inline`` in :mod:`repro.parallel`): one picks how
each shard's inner loop runs, the other picks where shards run, and the
two compose freely.

Selection (:func:`resolve_kernel`) is capability-based, never
import-error-based: ``auto`` picks the vector kernel whenever the
strategy is supported and quietly stays on python otherwise (DFS-NOIP is
*defined* by its from-scratch recomputation, so the baseline always runs
on the python kernel).  numpy is an optional accelerant (install as
``repro[fast]``) used by the word-array build; without it the vector
kernel still works on a pure-``array`` representation —
:func:`kernel_capabilities` reports which flavour is active.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any, NamedTuple

from ....errors import ParameterError
from ...result import SearchStatistics
from ..compiled import CompiledGraph
from ..controls import CancellationToken, RunControls, RunReport
from ..kernel import run_search
from ..strategies import (
    EnumerationStrategy,
    LargeCliqueStrategy,
    MuleStrategy,
    TopKStrategy,
)
from .vector_form import VectorForm, numpy_or_none, reset_numpy_probe, vector_form
from .vector_kernel import run_vector_search

__all__ = [
    "KERNELS",
    "KernelCapability",
    "kernel_capabilities",
    "resolve_kernel",
    "run_kernel_search",
    "run_vector_search",
    "VectorForm",
    "vector_form",
    "numpy_or_none",
    "reset_numpy_probe",
]

#: Valid values of every ``kernel`` parameter in the stack (requests,
#: CLI flags, wire schema v2, scheduler defaults).
KERNELS = ("auto", "python", "vector")

# Exact types the fused drivers implement.  Subclasses are excluded on
# purpose: they may override hooks the drivers never call.
_VECTOR_STRATEGIES = (MuleStrategy, TopKStrategy, LargeCliqueStrategy)


class KernelCapability(NamedTuple):
    """One kernel backend's availability, as reported by the probe."""

    #: Kernel name (``"python"`` or ``"vector"``).
    name: str
    #: Whether the kernel can run at all on this host.
    available: bool
    #: Whether the accelerated (numpy word-array) representation is active.
    accelerated: bool
    #: Human-readable description of the active representation.
    detail: str


def kernel_capabilities() -> tuple[KernelCapability, ...]:
    """Probe both kernels and report what this host can run.

    This is the request-time availability story: callers ask, they do not
    ``import numpy`` and catch.  The vector kernel is *always* available —
    numpy only switches its word-array build between the accelerated and
    the pure-``array`` representation.

    >>> [c.name for c in kernel_capabilities()]
    ['python', 'vector']
    >>> all(c.available for c in kernel_capabilities())
    True
    """
    np = numpy_or_none()
    return (
        KernelCapability(
            name="python",
            available=True,
            accelerated=False,
            detail="reference strategy-protocol kernel (all strategies)",
        ),
        KernelCapability(
            name="vector",
            available=True,
            accelerated=np is not None,
            detail=(
                f"uint64 word arrays via numpy {np.__version__}"
                if np is not None
                else "uint64 word arrays via pure array('Q') fallback"
            ),
        ),
    )


def resolve_kernel(kernel: str, strategy: EnumerationStrategy) -> str:
    """Resolve a requested kernel name against a strategy's capabilities.

    Returns ``"python"`` or ``"vector"``.  ``auto`` prefers the vector
    kernel when the strategy is one the fused drivers implement and falls
    back to python otherwise; an *explicit* ``vector`` request for an
    unsupported strategy is a :class:`~repro.errors.ParameterError` —
    silently ignoring it would misreport what was measured.
    """
    if kernel not in KERNELS:
        raise ParameterError(
            f"unknown kernel {kernel!r}; expected one of {', '.join(KERNELS)}"
        )
    supported = type(strategy) in _VECTOR_STRATEGIES
    if kernel == "python":
        return "python"
    if kernel == "vector":
        if not supported:
            raise ParameterError(
                f"the vector kernel does not support strategy "
                f"{type(strategy).__name__!r} (algorithm "
                f"{strategy.algorithm!r}); use kernel='python' or 'auto'"
            )
        return "vector"
    return "vector" if supported else "python"


def run_kernel_search(
    compiled: CompiledGraph,
    alpha: float,
    strategy: EnumerationStrategy,
    *,
    kernel: str = "auto",
    statistics: SearchStatistics | None = None,
    controls: RunControls | None = None,
    report: RunReport | None = None,
    cancel: CancellationToken | None = None,
) -> Iterator[tuple[frozenset[Any], float]]:
    """Run one enumeration on the resolved kernel backend.

    The single front door of kernel selection: same contract as
    :func:`~repro.core.engine.kernel.run_search` plus the ``kernel``
    parameter (one of :data:`KERNELS`).  Both backends yield identical
    streams, so callers never need to know which one ran.
    """
    if resolve_kernel(kernel, strategy) == "vector":
        return run_vector_search(
            compiled,
            alpha,
            strategy,
            statistics=statistics,
            controls=controls,
            report=report,
            cancel=cancel,
        )
    return run_search(
        compiled,
        alpha,
        strategy,
        statistics=statistics,
        controls=controls,
        report=report,
        cancel=cancel,
    )
