"""The shared enumeration engine behind every clique-mining algorithm.

The paper's algorithms — MULE (Algorithms 1–4), DFS-NOIP (Algorithm 7),
LARGE-MULE (Algorithms 5–6) and the related-work top-k problem — are all
depth-first searches over vertex subsets that differ only in bookkeeping
and pruning.  This subsystem factors the shared machinery into three layers:

* :mod:`repro.core.engine.compiled` — :class:`CompiledGraph`, an immutable
  search-ready representation of an :class:`~repro.uncertain.graph.UncertainGraph`
  (0..n-1 relabeling, integer-bitmask adjacency, flat probability arrays)
  plus :func:`compile_graph`, the shared validate → prune-edges →
  shared-neighborhood-filter → relabel preprocessing pipeline.
* :mod:`repro.core.engine.kernel` — :func:`run_search`, an explicit-stack
  **iterative** depth-first kernel.  It replaces the recursive ``enum()``
  closures of the seed implementation, eliminating the
  ``sys.setrecursionlimit`` mutation and enabling pause (it is a generator),
  early stop and time budgets via :class:`RunControls`.
* :mod:`repro.core.engine.strategies` — the pluggable
  :class:`EnumerationStrategy` protocol (candidate generation, branch
  pruning, emission test) with four implementations:
  :class:`MuleStrategy`, :class:`NoIncrementalStrategy`,
  :class:`LargeCliqueStrategy` and :class:`TopKStrategy`.

The public wrappers (:func:`repro.core.mule.mule`,
:func:`repro.core.fast_mule.fast_mule`, :func:`repro.core.dfs_noip.dfs_noip`,
:func:`repro.core.large_mule.large_mule`, :mod:`repro.core.top_k`) are thin
shims over these layers; see ``docs/architecture.md`` for how to add a new
strategy.
"""

from .backends import (
    KERNELS,
    KernelCapability,
    kernel_capabilities,
    resolve_kernel,
    run_kernel_search,
    run_vector_search,
)
from .compiled import CompiledGraph, compile_graph
from .controls import (
    CancellationToken,
    ProgressSnapshot,
    RunControls,
    RunReport,
    StopReason,
)
from .kernel import run_search
from .strategies import (
    EnumerationStrategy,
    LargeCliqueStrategy,
    MuleStrategy,
    NoIncrementalStrategy,
    TopKStrategy,
)

__all__ = [
    "CompiledGraph",
    "compile_graph",
    "CancellationToken",
    "ProgressSnapshot",
    "RunControls",
    "RunReport",
    "StopReason",
    "run_search",
    "KERNELS",
    "KernelCapability",
    "kernel_capabilities",
    "resolve_kernel",
    "run_kernel_search",
    "run_vector_search",
    "EnumerationStrategy",
    "MuleStrategy",
    "NoIncrementalStrategy",
    "LargeCliqueStrategy",
    "TopKStrategy",
]
