"""Run controls for the iterative search kernel.

Production workloads rarely want "enumerate everything, however long it
takes": interactive callers want the first few cliques quickly, batch
pipelines want a wall-clock ceiling per graph, and services want both.
:class:`RunControls` expresses those limits declaratively and
:class:`RunReport` records how a run actually ended, so truncated output is
always distinguishable from complete output.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ...errors import ParameterError

__all__ = [
    "CancellationToken",
    "ProgressSnapshot",
    "RunControls",
    "RunReport",
    "StopReason",
]


class StopReason:
    """How an enumeration run ended (string constants, not an enum, so the
    values serialize naturally in CLI/JSON output)."""

    COMPLETED = "completed"
    MAX_CLIQUES = "max-cliques"
    TIME_BUDGET = "time-budget"
    CANCELLED = "cancelled"


class CancellationToken:
    """Cooperative cancellation signal for a streaming kernel run.

    A token is handed to the kernel alongside :class:`RunControls`; the
    kernel polls it on the same ``check_every_frames`` cadence as the time
    budget, so cancellation latency is bounded by the cost of one check
    window.  When a check observes a cancelled token the run stops with
    :attr:`StopReason.CANCELLED` and the counters flushed to that point —
    the emitted records remain a depth-first prefix of the full
    enumeration, exactly like a ``max_cliques`` truncation.

    ``cancel()`` may be called from any thread and is idempotent.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation (thread-safe, idempotent)."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._event.is_set()


@dataclass(frozen=True)
class ProgressSnapshot:
    """A point-in-time view of a running enumeration.

    Built by observers (job status polls, progress bars) from the live
    :class:`RunReport` the kernel mutates in place; the kernel only ever
    increments the counters, so successive snapshots of the same run are
    monotonically non-decreasing.
    """

    cliques_emitted: int = 0
    frames_expanded: int = 0
    elapsed_seconds: float = 0.0


@dataclass(frozen=True)
class RunControls:
    """Declarative limits on a single enumeration run.

    Parameters
    ----------
    max_cliques:
        Stop after emitting this many cliques (``None`` = unlimited).  The
        emitted cliques are a prefix of the full enumeration in depth-first
        discovery order; they are all genuinely α-maximal.
    time_budget_seconds:
        Stop once this much wall-clock time has elapsed inside the kernel
        (``None`` = unlimited).  The budget is checked every
        ``check_every_frames`` descent steps, so the overrun is bounded by
        the cost of that many steps.
    check_every_frames:
        How many descent steps (successful *or* pruned) between time-budget
        checks.  Pruned descents count too, so a prune-dominated search
        still honours the budget.  The default keeps the ``perf_counter``
        overhead negligible.
    """

    max_cliques: int | None = None
    time_budget_seconds: float | None = None
    check_every_frames: int = 256

    def __post_init__(self) -> None:
        if self.max_cliques is not None and self.max_cliques < 1:
            raise ParameterError(
                f"max_cliques must be positive, got {self.max_cliques}"
            )
        if self.time_budget_seconds is not None and self.time_budget_seconds < 0:
            raise ParameterError(
                f"time_budget_seconds must be non-negative, got {self.time_budget_seconds}"
            )
        if self.check_every_frames < 1:
            raise ParameterError(
                f"check_every_frames must be positive, got {self.check_every_frames}"
            )

    @property
    def unlimited(self) -> bool:
        """True when neither limit is set (the kernel skips all checks)."""
        return self.max_cliques is None and self.time_budget_seconds is None


@dataclass
class RunReport:
    """What actually happened during a kernel run (filled in place).

    Attributes
    ----------
    stop_reason:
        One of the :class:`StopReason` constants.
    cliques_emitted:
        Number of cliques yielded before the run ended.
    frames_expanded:
        Number of search nodes the kernel visited.
    """

    stop_reason: str = StopReason.COMPLETED
    cliques_emitted: int = 0
    frames_expanded: int = 0

    @property
    def truncated(self) -> bool:
        """True when the run stopped before exhausting the search space."""
        return self.stop_reason != StopReason.COMPLETED
