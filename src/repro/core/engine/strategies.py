"""Pluggable enumeration strategies for the iterative search kernel.

The kernel (:mod:`repro.core.engine.kernel`) owns the depth-first walk —
the explicit stack, the working clique, emission plumbing and run controls.
Everything algorithm-specific lives behind the
:class:`EnumerationStrategy` protocol:

* **candidate generation** — which vertices may extend the current clique,
  and in what order (:meth:`~EnumerationStrategy.expand` /
  :meth:`~EnumerationStrategy.descend`);
* **branch pruning** — :meth:`~EnumerationStrategy.descend` returns ``None``
  to cut a subtree (LARGE-MULE's ``|C'| + |I'| < t`` bound);
* **emission test** — :meth:`~EnumerationStrategy.expand` decides whether
  the node's clique is reported and with what probability.

Four implementations reproduce the paper's algorithms:

=========================  ==================================================
:class:`MuleStrategy`      MULE (Algorithms 1–4): incremental ``I``/``X``
                           maintenance on bitmasks, O(1) maximality test.
:class:`NoIncrementalStrategy`
                           DFS-NOIP (Algorithm 7): identical output, but
                           probabilities and maximality recomputed from
                           scratch at every node — the Figure 1 baseline.
:class:`LargeCliqueStrategy`
                           LARGE-MULE (Algorithms 5–6): MULE plus the
                           size-≥t emission filter and branch bound.
:class:`TopKStrategy`      The related-work top-k problem: MULE restricted
                           to cliques of at least ``min_size`` vertices,
                           ranked by the caller.
=========================  ==================================================

A strategy's node *state* is opaque to the kernel; the incremental
strategies use a 5-slot list ``[q, cand_mask, cand_factors, excl_mask,
excl_factors]`` mirroring the ``(C, q, I, X)`` tuple of Algorithm 2.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from typing import Any

from ...errors import ParameterError
from ..result import SearchStatistics
from .compiled import CompiledGraph

__all__ = [
    "EnumerationStrategy",
    "MuleStrategy",
    "NoIncrementalStrategy",
    "LargeCliqueStrategy",
    "TopKStrategy",
    "bit_list",
]

_EMPTY: tuple[int, ...] = ()

# Node-state slots of the incremental (MULE-family) strategies.
_Q, _CAND_MASK, _CAND_FACTOR, _EXCL_MASK, _EXCL_FACTOR = range(5)


def bit_list(mask: int) -> list[int]:
    """Return the indices of the set bits of ``mask`` in increasing order."""
    out: list[int] = []
    append = out.append
    while mask:
        low = mask & -mask
        append(low.bit_length() - 1)
        mask ^= low
    return out


class EnumerationStrategy(ABC):
    """The protocol every enumeration strategy implements.

    Lifecycle: the kernel calls :meth:`bind` once per run, :meth:`root` to
    obtain the initial node state, then drives the search calling
    :meth:`expand` once per visited node, :meth:`descend` once per candidate
    branch, and :meth:`retire` once per *finished* candidate subtree.
    """

    #: Human-readable name recorded on results produced with this strategy.
    algorithm: str = "custom"

    def bind(
        self,
        compiled: CompiledGraph,
        alpha: float,
        statistics: SearchStatistics,
    ) -> None:
        """Attach the strategy to one search run (compiled graph, α, counters)."""
        self._compiled = compiled
        self._alpha = alpha
        self._stats = statistics

    @abstractmethod
    def root(self) -> Any:
        """Return the node state of the empty clique."""

    @abstractmethod
    def expand(
        self, state: Any, clique: list[int]
    ) -> tuple[Sequence[int], float | None]:
        """Visit a node: return its candidate order and emission decision.

        Parameters
        ----------
        state:
            The node state produced by :meth:`root` or :meth:`descend`.
        clique:
            The kernel's working clique (vertex indices, read-only).

        Returns
        -------
        (candidates, probability)
            ``candidates`` is the branch order for this node, already sorted
            ascending — it is computed **once** per node, never per visit.
            ``probability`` is the clique probability when the node's clique
            must be emitted, or ``None`` otherwise.
        """

    @abstractmethod
    def descend(self, state: Any, u: int, clique: list[int]) -> Any:
        """Build the child state for branching on candidate ``u``.

        Returning ``None`` prunes the branch: the kernel never visits the
        subtree (the child is still :meth:`retire`-d on the parent).
        """

    def retire(self, state: Any, u: int) -> None:
        """Called after candidate ``u``'s subtree is fully explored.

        MULE-family strategies move ``u`` from the candidate side to the
        exclusion side here; the default is a no-op.
        """


class MuleStrategy(EnumerationStrategy):
    """MULE (Algorithms 1–4) on the compiled bitmask representation.

    Carries the candidate set ``I`` and exclusion set ``X`` as
    (bitmask, factor-dict) pairs; extending the clique costs one
    multiplication per surviving candidate (``GenerateI``/``GenerateX``)
    and the α-maximality test is the O(1) emptiness check of Theorem 2.
    """

    algorithm = "mule"

    def bind(
        self,
        compiled: CompiledGraph,
        alpha: float,
        statistics: SearchStatistics,
    ) -> None:
        super().bind(compiled, alpha, statistics)
        self._adj_mask = compiled.adjacency_mask
        self._adj_prob = compiled.adjacency_probability
        self._higher = compiled.higher_masks

    def root(self) -> list[Any]:
        n = self._compiled.n
        return [1.0, self._compiled.all_mask, dict.fromkeys(range(n), 1.0), 0, {}]

    def expand(
        self, state: list[Any], clique: list[int]
    ) -> tuple[Sequence[int], float | None]:
        stats = self._stats
        stats.recursive_calls += 1
        cand_mask = state[_CAND_MASK]
        if not cand_mask and not state[_EXCL_MASK]:
            stats.maximality_checks += 1
            return _EMPTY, state[_Q]
        return bit_list(cand_mask), None

    def descend(self, state: list[Any], u: int, clique: list[int]) -> list[Any]:
        stats = self._stats
        stats.candidates_examined += 1
        alpha = self._alpha
        cand_mask = state[_CAND_MASK]
        cand_factor = state[_CAND_FACTOR]
        excl_mask = state[_EXCL_MASK]
        q = state[_Q] * cand_factor[u]
        adjacency_mask = self._adj_mask[u]
        adjacency_prob = self._adj_prob[u]

        # The work counter follows the paper's cost model (Lemma 10): one
        # multiplication for q' = q · r plus one unit per tuple of I and X
        # examined by GenerateI/GenerateX.  The bitmask AND physically skips
        # non-adjacent tuples, but counting the full sets keeps the metric
        # identical to the reference (pseudo-code) implementation.
        stats.probability_multiplications += (
            1 + cand_mask.bit_count() + excl_mask.bit_count()
        )

        # GenerateI (Algorithm 3): candidates above u, adjacent to u, α-feasible.
        new_cand_mask = 0
        new_cand_factor: dict[int, float] = {}
        m = cand_mask & adjacency_mask & self._higher[u]
        while m:
            low = m & -m
            m ^= low
            w = low.bit_length() - 1
            factor = cand_factor[w] * adjacency_prob[w]
            if q * factor >= alpha:
                new_cand_mask |= low
                new_cand_factor[w] = factor

        # GenerateX (Algorithm 4): exclusions adjacent to u, α-feasible.
        new_excl_mask = 0
        new_excl_factor: dict[int, float] = {}
        excl_factor = state[_EXCL_FACTOR]
        m = excl_mask & adjacency_mask
        while m:
            low = m & -m
            m ^= low
            w = low.bit_length() - 1
            factor = excl_factor[w] * adjacency_prob[w]
            if q * factor >= alpha:
                new_excl_mask |= low
                new_excl_factor[w] = factor

        return [q, new_cand_mask, new_cand_factor, new_excl_mask, new_excl_factor]

    def retire(self, state: list[Any], u: int) -> None:
        state[_EXCL_MASK] |= 1 << u
        state[_EXCL_FACTOR][u] = state[_CAND_FACTOR][u]


class LargeCliqueStrategy(MuleStrategy):
    """LARGE-MULE (Algorithms 5–6): only cliques with ≥ ``size_threshold`` vertices.

    Identical bookkeeping to :class:`MuleStrategy` plus two differences:

    * a branch is pruned (Algorithm 6, line 8) when even taking every
      remaining candidate cannot reach ``size_threshold`` vertices — the
      exclusion set of the pruned child is never built;
    * a node with empty ``I`` and ``X`` is emitted only when the clique has
      at least ``size_threshold`` vertices.
    """

    algorithm = "large-mule"

    def __init__(self, size_threshold: int) -> None:
        if size_threshold < 2:
            raise ParameterError(
                f"size_threshold must be at least 2, got {size_threshold}"
            )
        self.size_threshold = size_threshold

    def expand(
        self, state: list[Any], clique: list[int]
    ) -> tuple[Sequence[int], float | None]:
        stats = self._stats
        stats.recursive_calls += 1
        cand_mask = state[_CAND_MASK]
        if not cand_mask and not state[_EXCL_MASK]:
            stats.maximality_checks += 1
            if len(clique) >= self.size_threshold:
                return _EMPTY, state[_Q]
            return _EMPTY, None
        return bit_list(cand_mask), None

    def descend(self, state: list[Any], u: int, clique: list[int]) -> list[Any] | None:
        stats = self._stats
        stats.candidates_examined += 1
        alpha = self._alpha
        cand_factor = state[_CAND_FACTOR]
        q = state[_Q] * cand_factor[u]
        adjacency_mask = self._adj_mask[u]
        adjacency_prob = self._adj_prob[u]

        # Same cost model as MuleStrategy.descend, except the X-side units
        # are only charged when the branch survives the size bound (the
        # pruned path never calls GenerateX).
        stats.probability_multiplications += 1 + state[_CAND_MASK].bit_count()

        new_cand_mask = 0
        new_cand_factor: dict[int, float] = {}
        m = state[_CAND_MASK] & adjacency_mask & self._higher[u]
        while m:
            low = m & -m
            m ^= low
            w = low.bit_length() - 1
            factor = cand_factor[w] * adjacency_prob[w]
            if q * factor >= alpha:
                new_cand_mask |= low
                new_cand_factor[w] = factor

        if len(clique) + 1 + len(new_cand_factor) < self.size_threshold:
            # Algorithm 6, line 8: no clique of size >= t is reachable, so
            # the branch is cut before the exclusion set is even built.
            stats.pruned_branches += 1
            return None

        stats.probability_multiplications += state[_EXCL_MASK].bit_count()
        new_excl_mask = 0
        new_excl_factor: dict[int, float] = {}
        excl_factor = state[_EXCL_FACTOR]
        m = state[_EXCL_MASK] & adjacency_mask
        while m:
            low = m & -m
            m ^= low
            w = low.bit_length() - 1
            factor = excl_factor[w] * adjacency_prob[w]
            if q * factor >= alpha:
                new_excl_mask |= low
                new_excl_factor[w] = factor

        return [q, new_cand_mask, new_cand_factor, new_excl_mask, new_excl_factor]


class TopKStrategy(MuleStrategy):
    """The related-work top-k problem (Zou et al.): MULE with a size floor.

    Singleton cliques trivially have probability 1 and would dominate any
    probability ranking, so the strategy only emits cliques with at least
    ``min_size`` vertices; the wrapper ranks the emissions and keeps the
    best ``k``.  Runs with ``min_size=1`` emit everything MULE does.
    """

    algorithm = "top-k"

    def __init__(self, min_size: int = 2) -> None:
        if min_size <= 0:
            raise ParameterError(f"min_size must be positive, got {min_size}")
        self.min_size = min_size

    def expand(
        self, state: list[Any], clique: list[int]
    ) -> tuple[Sequence[int], float | None]:
        stats = self._stats
        stats.recursive_calls += 1
        cand_mask = state[_CAND_MASK]
        if not cand_mask and not state[_EXCL_MASK]:
            stats.maximality_checks += 1
            if len(clique) >= self.min_size:
                return _EMPTY, state[_Q]
            return _EMPTY, None
        return bit_list(cand_mask), None


class _NoipNode:
    """Node state of the non-incremental baseline: the raw candidate pool,
    the surviving candidates computed during :meth:`expand`, and — for
    extensions found α-maximal at branch time — the precomputed emission
    probability (such nodes are emitted without being searched, exactly as
    Algorithm 7 emits ``C'`` without recursing)."""

    __slots__ = ("pool", "surviving", "emission")

    def __init__(self, pool: list[int], emission: float | None = None) -> None:
        self.pool = pool
        self.surviving: list[int] = []
        self.emission = emission


class NoIncrementalStrategy(EnumerationStrategy):
    """DFS-NOIP (Algorithm 7): the paper's non-incremental baseline.

    Enumerates exactly the same α-maximal cliques as :class:`MuleStrategy`
    but carries no ``I``/``X`` bookkeeping: at every node it recomputes the
    clique probability, every candidate's extension probability and (when a
    clique might be emitted) the full maximality scan **from scratch**.
    Every recomputed pairwise product is counted in
    ``statistics.probability_multiplications``, which is what the Figure 1
    comparison measures.
    """

    algorithm = "dfs-noip"

    def root(self) -> _NoipNode:
        return _NoipNode(list(range(self._compiled.n)))

    def expand(
        self, state: _NoipNode, clique: list[int]
    ) -> tuple[Sequence[int], float | None]:
        stats = self._stats
        if state.emission is not None:
            # The parent already proved this extension α-maximal (Algorithm 7
            # emits C' without recursing into it), so the node is a pure
            # emission: no candidate filtering, no further search.
            return _EMPTY, state.emission
        stats.recursive_calls += 1
        clique_probability = self._probability_from_scratch(clique)
        current_max = clique[-1] if clique else -1

        surviving: list[int] = []
        for u in state.pool:
            stats.candidates_examined += 1
            if u <= current_max:
                continue
            if self._probability_from_scratch(clique + [u]) >= self._alpha:
                surviving.append(u)
        state.surviving = surviving

        if surviving:
            return surviving, None
        if clique and self._is_alpha_maximal_from_scratch(clique, clique_probability):
            return _EMPTY, clique_probability
        return _EMPTY, None

    def descend(self, state: _NoipNode, u: int, clique: list[int]) -> _NoipNode:
        # Algorithm 7 branch step: recompute the extended clique probability
        # from scratch (again) and test α-maximality from scratch.  An
        # α-maximal extension is emitted directly; everything else is
        # searched with the neighborhood-restricted candidate pool.
        extended = clique + [u]
        extended_probability = self._probability_from_scratch(extended)
        if self._is_alpha_maximal_from_scratch(extended, extended_probability):
            return _NoipNode([], emission=extended_probability)
        adjacency = self._compiled.adjacency_probability[u]
        return _NoipNode([w for w in state.surviving if w in adjacency])

    # ------------------------------------------------------------------ #
    # From-scratch primitives (the whole point of the baseline)
    # ------------------------------------------------------------------ #
    def _probability_from_scratch(self, vertices: list[int]) -> float:
        """Recompute ``clq(C, G)`` by multiplying every internal edge probability."""
        stats = self._stats
        adjacency_probability = self._compiled.adjacency_probability
        probability = 1.0
        for pos, u in enumerate(vertices):
            row = adjacency_probability[u]
            for v in vertices[pos + 1 :]:
                p = row.get(v)
                stats.probability_multiplications += 1
                if p is None:
                    return 0.0
                probability *= p
        return probability

    def _is_alpha_maximal_from_scratch(
        self, clique: list[int], clique_probability: float
    ) -> bool:
        """Scan all outside vertices, recomputing extension factors from scratch."""
        stats = self._stats
        stats.maximality_checks += 1
        alpha = self._alpha
        adjacency_probability = self._compiled.adjacency_probability
        members = set(clique)
        for w in range(self._compiled.n):
            if w in members:
                continue
            row = adjacency_probability[w]
            factor = 1.0
            feasible = True
            for u in clique:
                p = row.get(u)
                stats.probability_multiplications += 1
                if p is None:
                    feasible = False
                    break
                factor *= p
            if feasible and clique_probability * factor >= alpha:
                return False
        return True
