"""The explicit-stack iterative search kernel.

:func:`run_search` performs the depth-first exploration shared by every
enumeration algorithm in the repository.  Compared to the recursive
``enum()`` closures it replaces, the kernel:

* **never recurses** — search depth is bounded by memory, not by the
  interpreter's recursion limit, so no enumerator mutates
  ``sys.setrecursionlimit`` anymore and 10⁵-vertex clique chains are fine;
* **streams** — it is a generator yielding ``(clique, probability)`` pairs
  in depth-first discovery order; callers can pause, interleave, or abandon
  the search at any point;
* **honours run controls** — ``max_cliques`` and ``time_budget_seconds``
  stop the walk early with the reason recorded on a
  :class:`~repro.core.engine.controls.RunReport`.

The per-node bookkeeping (candidate generation, pruning, emission) is
delegated to an :class:`~repro.core.engine.strategies.EnumerationStrategy`.
The correspondence to the recursive formulation of Algorithm 2:

* pushing a frame = entering ``Enum-Uncertain-MC``;
* ``strategy.expand`` = the emission test at the top of the call plus the
  (single!) sort of the candidate set — the seed implementation re-sorted
  the candidates of every ancestor on every visit;
* ``strategy.descend`` = lines 5–7 (``GenerateI``/``GenerateX``);
* ``strategy.retire`` = line 9 (move the branched-on vertex into ``X``),
  deferred until the subtree finishes, exactly as the recursion does.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any
from time import perf_counter

from ..result import SearchStatistics
from .compiled import CompiledGraph
from .controls import CancellationToken, RunControls, RunReport, StopReason
from .strategies import EnumerationStrategy

__all__ = ["run_search"]

_UNLIMITED = RunControls()


def run_search(
    compiled: CompiledGraph,
    alpha: float,
    strategy: EnumerationStrategy,
    *,
    statistics: SearchStatistics | None = None,
    controls: RunControls | None = None,
    report: RunReport | None = None,
    cancel: CancellationToken | None = None,
) -> Iterator[tuple[frozenset[Any], float]]:
    """Run one iterative depth-first enumeration and yield its emissions.

    Parameters
    ----------
    compiled:
        The compiled graph (see :func:`~repro.core.engine.compiled.compile_graph`).
    alpha:
        The probability threshold, already validated by the caller.
    strategy:
        The enumeration strategy; bound to this run via ``strategy.bind``.
    statistics:
        Optional :class:`~repro.core.result.SearchStatistics` updated in place.
    controls:
        Optional :class:`~repro.core.engine.controls.RunControls`; ``None``
        means unlimited.
    report:
        Optional :class:`~repro.core.engine.controls.RunReport` filled in
        place with the stop reason and progress counters.
    cancel:
        Optional :class:`~repro.core.engine.controls.CancellationToken`
        polled on the ``check_every_frames`` cadence (same window as the
        time budget; cancellation wins when both fire in one window).

    Yields
    ------
    tuple(frozenset, float)
        Each emitted clique (original vertex labels) with its probability,
        in depth-first discovery order.
    """
    statistics = statistics if statistics is not None else SearchStatistics()
    report = report if report is not None else RunReport()
    controls = controls if controls is not None else _UNLIMITED
    # A report object may be reused across runs: reset all of it, not just
    # the stop reason, or stale counters would trip the max_cliques check.
    report.stop_reason = StopReason.COMPLETED
    report.cliques_emitted = 0
    report.frames_expanded = 0

    strategy.bind(compiled, alpha, statistics)
    if compiled.n == 0:
        return

    decode = compiled.decode
    # Shard restriction (CompiledGraph.restrict_roots): first-level branches
    # outside root_mask are skipped without calling the strategy — but still
    # retired into the exclusion side below — so *every* strategy honours
    # sharding and maximality stays global within a shard.  Unrestricted
    # searches skip the per-branch check entirely.
    root_mask = compiled.root_mask
    root_restricted = root_mask != compiled.all_mask
    max_cliques = controls.max_cliques
    deadline = (
        perf_counter() + controls.time_budget_seconds
        if controls.time_budget_seconds is not None
        else None
    )
    check_every = controls.check_every_frames
    check_limits = deadline is not None or cancel is not None

    expand = strategy.expand
    descend = strategy.descend
    retire = strategy.retire

    clique: list[int] = []
    root = strategy.root()
    candidates, probability = expand(root, clique)
    report.frames_expanded += 1
    if probability is not None:
        yield decode(clique), probability
        report.cliques_emitted += 1
        if max_cliques is not None and report.cliques_emitted >= max_cliques:
            report.stop_reason = StopReason.MAX_CLIQUES
            return
    if not candidates:
        return

    # Frame layout: [state, candidates, n_candidates, next_index,
    # pending_retire_vertex].  ``pending`` is the candidate whose subtree
    # just finished (or was pruned); it is retired exactly once, when the
    # frame next surfaces.
    stack: list[list[Any]] = [[root, candidates, len(candidates), 0, -1]]
    frames_since_check = 0

    while stack:
        frame = stack[-1]
        pending = frame[4]
        if pending >= 0:
            retire(frame[0], pending)
            frame[4] = -1

        index = frame[3]
        if index >= frame[2]:
            stack.pop()
            if clique:
                clique.pop()
            continue
        frame[3] = index + 1
        u = frame[1][index]
        frame[4] = u

        if root_restricted and not clique and not (root_mask >> u) & 1:
            child = None
        else:
            child = descend(frame[0], u, clique)
        # Every descent — pruned or not — counts toward the time-budget
        # check window.  Checking only after successful descents (the old
        # behaviour) made the deadline unreachable on prune-dominated
        # stretches: a strategy refusing millions of branches in a row
        # never surfaced at the check below and blew past the budget.
        if check_limits:
            frames_since_check += 1
            if frames_since_check >= check_every:
                frames_since_check = 0
                # Cancellation is checked first so that a token cancelled
                # before an already-expired deadline is observed still wins
                # deterministically within the shared check window.
                if cancel is not None and cancel.cancelled:
                    report.stop_reason = StopReason.CANCELLED
                    return
                if deadline is not None and perf_counter() >= deadline:
                    report.stop_reason = StopReason.TIME_BUDGET
                    return
        if child is None:
            continue

        clique.append(u)
        child_candidates, probability = expand(child, clique)
        report.frames_expanded += 1
        if probability is not None:
            yield decode(clique), probability
            report.cliques_emitted += 1
            if max_cliques is not None and report.cliques_emitted >= max_cliques:
                report.stop_reason = StopReason.MAX_CLIQUES
                return
        if child_candidates:
            stack.append([child, child_candidates, len(child_candidates), 0, -1])
        else:
            clique.pop()
