"""Compiled-graph caching — the artifact store behind the session API.

Compilation (:func:`~repro.core.engine.compiled.compile_graph`) is the one
preprocessing pipeline every enumerator shares, and before the session API
every public entry point re-ran it per call.  :class:`CompiledGraphCache`
makes the compiled artifact reusable:

* entries are keyed by ``(fingerprint, α-pruning level, SNF threshold)`` —
  :meth:`UncertainGraph.fingerprint` is a stable content hash, so one cache
  instance can safely serve many sessions (and many graphs);
* a miss at pruning level α is satisfied **without recompiling** whenever a
  plain entry pruned at α′ ≤ α (or unpruned) exists: the artifact is
  *derived* via :meth:`CompiledGraph.restrict_probability`, which only
  filters the already-compiled arrays.  Derived artifacts are bit-identical
  to fresh compilations, so searches over them produce identical cliques
  *and* identical counters;
* shared-neighborhood-filtered entries (LARGE-MULE) are never derived — the
  Modani–Dey filter is an iterative graph computation, not an edge filter —
  so those keys always full-compile on a miss;
* hit/derivation/compilation accounting is exposed via :meth:`info`
  (surfaced as ``MiningSession.cache_info()``), which is how the batch
  tests assert "a five-α sweep performs exactly one compilation".
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from time import perf_counter
from typing import NamedTuple

from ..core.engine.compiled import CompiledGraph, compile_graph
from ..core.pruning import PruningReport
from ..errors import ParameterError
from ..obs import registry as _obs_registry
from ..uncertain.graph import UncertainGraph

__all__ = ["CacheInfo", "CompiledGraphCache"]

#: Lookup outcomes by graph: hit (exact reuse), derive (α-restriction of a
#: cached base) or compile (full compile_graph run).
_CACHE_LOOKUPS = _obs_registry().counter(
    "cache_lookups_total",
    "Compiled-graph cache lookups by graph and outcome (hit/derive/compile).",
    labelnames=("graph", "outcome"),
)

#: Wall seconds of the full compilations the cache could not avoid.
_CACHE_COMPILE_SECONDS = _obs_registry().histogram(
    "cache_compile_seconds",
    "Wall seconds per full compile_graph run on a cache miss.",
)

#: Cache key: (graph fingerprint, α-pruning level or None, SNF threshold or None).
_Key = tuple[str, "float | None", "int | None"]


class CacheInfo(NamedTuple):
    """A snapshot of cache effectiveness counters.

    ``hits`` counts exact-key reuse; every miss is resolved either by
    ``derivations`` (cheap α-restriction of a cached base) or by
    ``compilations`` (full :func:`compile_graph` runs — the expensive
    event batching exists to minimise); ``entries`` is the current store
    size.  ``misses == derivations + compilations`` always holds.
    """

    hits: int
    misses: int
    compilations: int
    derivations: int
    entries: int


class CompiledGraphCache:
    """An LRU store of compiled graphs with derivation-aware lookup.

    Thread-safe: the store and its counters are guarded by a lock, so one
    cache may serve concurrent sessions.  The expensive work (compilation,
    derivation) runs *outside* the lock — two threads missing the same key
    simultaneously may both build it (the second store wins; both builds
    are counted) — so a slow compile never blocks other sessions' hits.

    Derivation bases are touched on every use, so under LRU pressure a
    wide α sweep keeps its single base resident and evicts the derived
    one-shot artifacts instead.

    Parameters
    ----------
    maxsize:
        Maximum number of artifacts kept (least recently used evicted
        first); ``None`` (default) means unbounded.  Long-lived caches —
        a session that sweeps many α values, or a shared service cache —
        should be bounded (`MiningSession`'s private cache is, by
        default).

    >>> g = UncertainGraph(edges=[(1, 2, 0.9), (2, 3, 0.4)])
    >>> cache = CompiledGraphCache()
    >>> fp = g.fingerprint()
    >>> base = cache.get(g, fp, alpha=0.3)            # full compilation
    >>> derived = cache.get(g, fp, alpha=0.5)         # derived from base
    >>> again = cache.get(g, fp, alpha=0.5)           # exact hit
    >>> cache.info().compilations, cache.info().derivations, cache.info().hits
    (1, 1, 1)
    """

    def __init__(self, maxsize: int | None = None) -> None:
        if maxsize is not None and maxsize < 1:
            raise ParameterError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: OrderedDict[_Key, CompiledGraph] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._compilations = 0
        self._derivations = 0
        # Per-fingerprint [hits, misses, compilations, derivations] — what
        # lets a multi-graph service assert "this graph compiled exactly
        # once" instead of only the global total.  Counters live and die
        # with the graph's residency (see :meth:`discard`).
        self._by_fingerprint: dict[str, list[int]] = {}

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def get(
        self,
        graph: UncertainGraph,
        fingerprint: str,
        *,
        alpha: float | None = None,
        size_threshold: int | None = None,
        pruning_report: PruningReport | None = None,
    ) -> CompiledGraph:
        """Return the compiled artifact for these options, building it on miss.

        ``pruning_report`` forces a full compile even on a hit — the report
        is filled by the filter actually running, which a cached artifact
        cannot replay — and the fresh artifact replaces the cached entry.
        """
        key: _Key = (fingerprint, alpha, size_threshold)
        base: CompiledGraph | None = None
        with self._lock:
            if pruning_report is None:
                entry = self._entries.get(key)
                if entry is not None:
                    self._hits += 1
                    self._count_locked(fingerprint, 0)
                    self._entries.move_to_end(key)
                    _CACHE_LOOKUPS.labels(graph=fingerprint, outcome="hit").inc()
                    return entry
                if size_threshold is None and alpha is not None:
                    base_key = self._best_base_key_locked(fingerprint, alpha)
                    if base_key is not None:
                        base = self._entries[base_key]
                        # Keep derivation bases hot: a wide sweep must
                        # evict its derived one-shot artifacts under LRU
                        # pressure, never the one base serving them all.
                        self._entries.move_to_end(base_key)

        # The expensive work happens outside the lock (compiled graphs are
        # immutable, so a base may be read even if concurrently evicted).
        if base is not None:
            derived = base.restrict_probability(alpha)
            with self._lock:
                self._misses += 1
                self._derivations += 1
                self._count_locked(fingerprint, 1)
                self._count_locked(fingerprint, 3)
                self._store_locked(key, derived)
            _CACHE_LOOKUPS.labels(graph=fingerprint, outcome="derive").inc()
            return derived

        started = perf_counter()
        compiled = compile_graph(
            graph,
            alpha=alpha,
            size_threshold=size_threshold,
            pruning_report=pruning_report,
        )
        _CACHE_COMPILE_SECONDS.observe(perf_counter() - started)
        with self._lock:
            self._misses += 1
            self._compilations += 1
            self._count_locked(fingerprint, 1)
            self._count_locked(fingerprint, 2)
            self._store_locked(key, compiled)
        _CACHE_LOOKUPS.labels(graph=fingerprint, outcome="compile").inc()
        return compiled

    def adopt(
        self,
        fingerprint: str,
        compiled: CompiledGraph,
        *,
        alpha: float | None = None,
        size_threshold: int | None = None,
    ) -> None:
        """Insert a caller-precompiled artifact under the given options.

        The caller vouches that ``compiled`` was produced by
        ``compile_graph(graph, alpha=alpha, size_threshold=size_threshold)``
        for the graph with this fingerprint — this is how
        :func:`repro.parallel.parallel_mule` forwards a precompiled graph
        into the session without a recompile.
        """
        with self._lock:
            self._store_locked((fingerprint, alpha, size_threshold), compiled)

    def _best_base_key_locked(self, fingerprint: str, alpha: float) -> _Key | None:
        """Find the cheapest legal derivation base for pruning level ``alpha``.

        Legal: a plain (non-SNF) entry of the same graph pruned at α′ ≤ α
        (an unpruned entry counts as α′ = 0).  Cheapest: the largest such
        α′ — fewer surviving edges to filter.  Caller holds the lock.
        """
        best_key: _Key | None = None
        best_level = -1.0
        for key in self._entries:
            fp, base_alpha, st = key
            if fp != fingerprint or st is not None:
                continue
            level = 0.0 if base_alpha is None else base_alpha
            if level <= alpha and level > best_level:
                best_key = key
                best_level = level
        return best_key

    def _store_locked(self, key: _Key, compiled: CompiledGraph) -> None:
        self._entries[key] = compiled
        self._entries.move_to_end(key)
        if self.maxsize is not None:
            while len(self._entries) > self.maxsize:
                evicted_key, _ = self._entries.popitem(last=False)
                fingerprint = evicted_key[0]
                # A fingerprint's counters live exactly as long as its
                # residency: when LRU pressure (or a discard racing an
                # in-flight job) expels a graph's last artifact, its
                # per-graph view goes with it — which also bounds the
                # counter map for long-lived multi-tenant caches.
                if not any(k[0] == fingerprint for k in self._entries):
                    self._by_fingerprint.pop(fingerprint, None)

    def _count_locked(self, fingerprint: str, index: int) -> None:
        """Bump one per-fingerprint counter (caller holds the lock).

        Indices follow :class:`CacheInfo` order: 0=hits, 1=misses,
        2=compilations, 3=derivations.
        """
        counters = self._by_fingerprint.get(fingerprint)
        if counters is None:
            counters = self._by_fingerprint[fingerprint] = [0, 0, 0, 0]
        counters[index] += 1

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def info(self) -> CacheInfo:
        """Return the current :class:`CacheInfo` counters."""
        with self._lock:
            return CacheInfo(
                hits=self._hits,
                misses=self._misses,
                compilations=self._compilations,
                derivations=self._derivations,
                entries=len(self._entries),
            )

    def info_for(self, fingerprint: str) -> CacheInfo:
        """Return the counters attributable to one graph fingerprint.

        ``entries`` counts the artifacts of that graph currently resident;
        the event counters cover the graph's current residency (they reset
        when the graph is :meth:`discard`-ed).  This is what a multi-graph
        service exposes as per-graph stats, so "graph X compiled exactly
        once" can be asserted even while other graphs churn the cache.
        """
        with self._lock:
            hits, misses, compilations, derivations = self._by_fingerprint.get(
                fingerprint, (0, 0, 0, 0)
            )
            entries = sum(1 for key in self._entries if key[0] == fingerprint)
            return CacheInfo(
                hits=hits,
                misses=misses,
                compilations=compilations,
                derivations=derivations,
                entries=entries,
            )

    def counters_snapshot(self) -> "tuple[CacheInfo, dict[str, CacheInfo]]":
        """Aggregate plus per-fingerprint counters, read atomically.

        Both views come from **one** lock acquisition, so within the
        returned pair the per-graph counters always sum to at most the
        aggregate (``info()`` followed by per-graph ``info_for()`` calls
        cannot promise that — mining between the two reads can push a
        graph's counters past an aggregate read earlier).  This is the
        snapshot ``MiningServer.stats_payload`` builds its cache component
        from.
        """
        with self._lock:
            fingerprints = set(self._by_fingerprint)
            fingerprints.update(key[0] for key in self._entries)
            per_graph: dict[str, CacheInfo] = {}
            for fingerprint in fingerprints:
                hits, misses, compilations, derivations = self._by_fingerprint.get(
                    fingerprint, (0, 0, 0, 0)
                )
                per_graph[fingerprint] = CacheInfo(
                    hits=hits,
                    misses=misses,
                    compilations=compilations,
                    derivations=derivations,
                    entries=sum(1 for key in self._entries if key[0] == fingerprint),
                )
            aggregate = CacheInfo(
                hits=self._hits,
                misses=self._misses,
                compilations=self._compilations,
                derivations=self._derivations,
                entries=len(self._entries),
            )
            return aggregate, per_graph

    def discard(self, fingerprint: str) -> int:
        """Drop every artifact (and the counters) of one graph.

        Returns the number of entries removed.  The global counters keep
        their history; only the per-fingerprint view resets — a re-added
        graph starts its residency accounting from zero.
        """
        with self._lock:
            stale = [key for key in self._entries if key[0] == fingerprint]
            for key in stale:
                del self._entries[key]
            self._by_fingerprint.pop(fingerprint, None)
            return len(stale)

    def clear(self) -> None:
        """Drop every artifact and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = self._misses = 0
            self._compilations = self._derivations = 0
            self._by_fingerprint.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        info = self.info()
        return (
            f"CompiledGraphCache(entries={info.entries}, hits={info.hits}, "
            f"compilations={info.compilations}, derivations={info.derivations})"
        )
