"""The uniform result model of the session API.

Every session entry point — serial, sharded parallel, top-k, sweeps —
returns :class:`EnumerationOutcome`, so callers never branch on
list-vs-:class:`~repro.core.top_k.TopKResult` shapes: the records, the
search counters, the :class:`~repro.core.engine.controls.RunReport` and the
stop/truncation provenance are always in the same place.  Legacy callers
convert with :meth:`EnumerationOutcome.to_result`, which rebuilds exactly
the :class:`~repro.core.result.EnumerationResult` the free functions have
always returned.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from ..core.engine.controls import RunReport, StopReason
from ..core.result import CliqueRecord, EnumerationResult, SearchStatistics
from .request import EnumerationRequest

__all__ = ["EnumerationOutcome"]


@dataclass
class EnumerationOutcome:
    """What one enumeration produced, uniformly across all algorithms.

    Attributes
    ----------
    algorithm:
        Label of the engine path that ran (``"mule"``, ``"fast-mule"``,
        ``"dfs-noip"``, ``"large-mule"``, ``"top-k"``, ``"parallel-mule"``).
    alpha:
        The effective threshold: the requested α, or — for a top-k
        threshold search — the final α the descent stopped at.
    records:
        The emitted cliques.  Serial runs list them in depth-first
        discovery order (so a truncated run's records are a DFS prefix);
        parallel runs in shard-merge order; top-k runs list the ranked
        top-``k`` (most probable first).
    statistics:
        Search-effort counters (summed across shards on the parallel path;
        the final pass's counters for a threshold search).
    report:
        The kernel's :class:`~repro.core.engine.controls.RunReport` — stop
        reason and progress counters.
    elapsed_seconds:
        Wall-clock time of the whole dispatch, compile/cache lookup
        included (mirroring the legacy free functions).
    request:
        The request that produced this outcome (``None`` for outcomes
        synthesised outside the dispatch).

    >>> outcome = EnumerationOutcome(algorithm="mule", alpha=0.5)
    >>> outcome.truncated, outcome.num_cliques
    (False, 0)
    """

    algorithm: str
    alpha: float
    records: list[CliqueRecord] = field(default_factory=list)
    statistics: SearchStatistics = field(default_factory=SearchStatistics)
    report: RunReport = field(default_factory=RunReport)
    elapsed_seconds: float = 0.0
    request: EnumerationRequest | None = None

    @property
    def stop_reason(self) -> str:
        """How the run ended (a :class:`~repro.core.engine.controls.StopReason`)."""
        return self.report.stop_reason

    @property
    def truncated(self) -> bool:
        """True when run controls stopped the enumeration before completion."""
        return self.stop_reason != StopReason.COMPLETED

    @property
    def num_cliques(self) -> int:
        """Number of records (the paper's "output size")."""
        return len(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[CliqueRecord]:
        return iter(self.records)

    def vertex_sets(self) -> set[frozenset]:
        """Return the emitted cliques as a set of frozensets."""
        return {record.vertices for record in self.records}

    def records_by_vertices(self) -> dict[frozenset, float]:
        """Return a mapping clique → exact probability (order-insensitive)."""
        return {record.vertices: record.probability for record in self.records}

    def matches(self, other, *, compare_statistics: bool = True) -> bool:
        """True when ``other`` describes the same enumeration output.

        This is the one parity comparison used across the test suites (and
        the remote/local acceptance checks): cliques with their exact
        probabilities, the effective α, the stop reason and — unless
        ``compare_statistics=False`` — the search-effort counters.  The
        algorithm *label* and wall-clock time are deliberately excluded, so
        serial/parallel and local/remote runs of the same search compare
        equal.  ``other`` may be an :class:`EnumerationOutcome` or a legacy
        :class:`~repro.core.result.EnumerationResult`.
        """
        try:
            self.assert_matches(other, compare_statistics=compare_statistics)
        except AssertionError:
            return False
        return True

    def assert_matches(self, other, *, compare_statistics: bool = True) -> None:
        """Like :meth:`matches`, but raise ``AssertionError`` with the diff.

        Intended for tests: a failure names the first disagreeing component
        (cliques, α, stop reason or counters) instead of dumping two whole
        outcomes.
        """
        mine = self.records_by_vertices()
        theirs = {record.vertices: record.probability for record in other}
        if mine != theirs:
            missing = sorted(map(sorted, set(theirs) - set(mine)))
            extra = sorted(map(sorted, set(mine) - set(theirs)))
            drifted = {
                tuple(sorted(v)): (mine[v], theirs[v])
                for v in set(mine) & set(theirs)
                if mine[v] != theirs[v]
            }
            raise AssertionError(
                f"clique sets differ: missing={missing} extra={extra} "
                f"probability-drift={drifted}"
            )
        # Explicit raises, not ``assert`` statements: this is library code
        # (examples and benchmarks gate on it too) and must keep checking
        # under ``python -O``.
        if self.alpha != other.alpha:
            raise AssertionError(f"alpha differs: {self.alpha} != {other.alpha}")
        if self.stop_reason != other.stop_reason:
            raise AssertionError(
                f"stop_reason differs: {self.stop_reason!r} != {other.stop_reason!r}"
            )
        if compare_statistics and self.statistics != other.statistics:
            raise AssertionError(
                f"search counters differ: {self.statistics} != {other.statistics}"
            )

    def to_result(self) -> EnumerationResult:
        """Convert to the legacy :class:`~repro.core.result.EnumerationResult`.

        The conversion is lossless for everything the legacy type carries:
        records (re-sorted by its usual (size, members) order), statistics,
        elapsed time and stop reason.
        """
        return EnumerationResult(
            algorithm=self.algorithm,
            alpha=self.alpha,
            cliques=self.records,
            statistics=self.statistics,
            elapsed_seconds=self.elapsed_seconds,
            stop_reason=self.stop_reason,
        )
