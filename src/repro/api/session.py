"""The mining session — one owner of compilation, caching and dispatch.

:class:`MiningSession` is the serving surface of the library: construct it
once per graph and every enumeration request — any algorithm, any α, serial
or sharded-parallel — runs through :meth:`MiningSession.enumerate`, reusing
one compiled artifact wherever legal instead of recompiling per call.  The
legacy free functions (:func:`repro.core.mule.mule` and friends) are thin
delegates over a throwaway session, so the engine has exactly one
compilation owner either way.

Caching model
-------------
The session owns a :class:`~repro.api.cache.CompiledGraphCache` (optionally
shared between sessions) keyed by the graph's stable content hash
(:meth:`UncertainGraph.fingerprint`) plus the compile options.  A request at
pruning level α reuses any cached artifact pruned at α′ ≤ α by *deriving*
(filtering the compiled arrays — no re-sort, no graph traversal), which is
what makes :meth:`sweep` compile once for a whole α sweep while returning
cliques **and counters** bit-identical to per-α calls of :func:`mule`.

With a *private* cache (the default) the key skips the content hash — the
cache serves exactly one graph, so hashing would only add cost to one-shot
sessions; a *shared* cache keys by the fingerprint, computed lazily, once
per session.  Either way: do not mutate the graph while a session (or a
shared cache holding its artifacts) is alive.

>>> from repro.uncertain.graph import UncertainGraph
>>> g = UncertainGraph(edges=[(1, 2, 0.9), (2, 3, 0.9), (1, 3, 0.9), (3, 4, 0.4)])
>>> session = MiningSession(g)
>>> outcome = session.enumerate(EnumerationRequest(algorithm="mule", alpha=0.5))
>>> sorted(sorted(r.vertices) for r in outcome)
[[1, 2, 3], [4]]
>>> outcomes = session.sweep([0.5, 0.6, 0.7, 0.8, 0.9])
>>> [o.num_cliques for o in outcomes]
[2, 2, 2, 4, 4]
>>> session.cache_info().compilations
1
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import replace
from time import monotonic

from ..core.engine.backends import run_kernel_search
from ..core.engine.compiled import CompiledGraph
from ..core.engine.controls import CancellationToken, RunControls, RunReport
from ..core.engine.strategies import (
    EnumerationStrategy,
    LargeCliqueStrategy,
    MuleStrategy,
    NoIncrementalStrategy,
    TopKStrategy,
)
from ..core.pruning import PruningReport
from ..core.result import CliqueRecord, SearchStatistics, Stopwatch, rank_by_probability
from ..errors import ParameterError
from ..obs import registry as _obs_registry
from ..uncertain.graph import UncertainGraph
from .cache import CacheInfo, CompiledGraphCache
from .outcome import EnumerationOutcome
from .request import EnumerationRequest

__all__ = ["MiningSession", "plan_base_compile"]

# Engine progress is observed *here*, from the RunReport/SearchStatistics a
# finished kernel run hands back — never inside ``core/engine`` itself, so
# the kernel keeps ``perf_counter`` as its only clock seam and the
# ``kernel-determinism`` check rule holds.
_ENGINE_RUNS = _obs_registry().counter(
    "engine_runs_total", "Completed (fully consumed) kernel runs."
)
_ENGINE_FRAMES = _obs_registry().counter(
    "engine_frames_expanded_total", "Search frames expanded across runs."
)
_ENGINE_CLIQUES = _obs_registry().counter(
    "engine_cliques_emitted_total", "Maximal cliques emitted across runs."
)
_ENGINE_PRUNES = _obs_registry().counter(
    "engine_pruned_branches_total", "Branches pruned across runs."
)


def _observe_engine_run(
    statistics: SearchStatistics, report: "RunReport | None"
) -> None:
    """Fold one finished run's counters into the ``engine_*`` metrics.

    Serial runs report frames via :class:`RunReport`; merged parallel runs
    leave ``frames_expanded`` at zero, so the recursive-call count (the
    same quantity, summed across shards) stands in.  Emissions are only
    known when a report was attached — bare ``stream()`` callers without
    one contribute frames and prunes but no emission count.
    """
    frames = (
        report.frames_expanded
        if report is not None and report.frames_expanded
        else statistics.recursive_calls
    )
    _ENGINE_RUNS.inc()
    _ENGINE_FRAMES.inc(frames)
    if report is not None:
        _ENGINE_CLIQUES.inc(report.cliques_emitted)
    _ENGINE_PRUNES.inc(statistics.pruned_branches)


class MiningSession:
    """A compile-once facade over every enumeration algorithm.

    Parameters
    ----------
    graph:
        The uncertain graph this session mines.  Treated as immutable for
        the session's lifetime (the cache key is a content hash computed
        once).
    cache:
        Optional :class:`~repro.api.cache.CompiledGraphCache` to share
        compiled artifacts across sessions (e.g. one bounded cache for a
        whole service; the cache is thread-safe); by default each session
        owns a private cache bounded at 128 artifacts.
    """

    #: Cache key used with a session-private cache: such a cache only ever
    #: holds artifacts of this session's one graph, so a content hash would
    #: cost a full edge sort + SHA-256 per one-shot session (roughly the
    #: price of a compilation) without discriminating anything.
    _PRIVATE_KEY = "<session-private>"

    #: Bound of the default private cache.  Wide sweeps derive one
    #: artifact per α; the bound keeps a long-lived session from pinning
    #: hundreds of one-shot artifacts (derivation bases stay resident —
    #: the cache touches them on every use — so even a 500-α sweep still
    #: compiles exactly once).
    _PRIVATE_CACHE_MAXSIZE = 128

    def __init__(
        self, graph: UncertainGraph, *, cache: CompiledGraphCache | None = None
    ) -> None:
        self._graph = graph
        self._shared_cache = cache is not None
        self._cache = (
            cache
            if cache is not None
            else CompiledGraphCache(maxsize=self._PRIVATE_CACHE_MAXSIZE)
        )
        self._fingerprint: str | None = None

    @property
    def graph(self) -> UncertainGraph:
        """The graph this session mines."""
        return self._graph

    @property
    def fingerprint(self) -> str:
        """The graph's content hash (computed lazily, once per session)."""
        if self._fingerprint is None:
            self._fingerprint = self._graph.fingerprint()
        return self._fingerprint

    @property
    def _cache_key(self) -> str:
        """The graph component of the cache key.

        Only a *shared* cache needs the content hash to tell graphs apart;
        a private cache serves exactly one graph, so one-shot sessions (the
        legacy free functions) skip the fingerprint entirely.
        """
        return self.fingerprint if self._shared_cache else self._PRIVATE_KEY

    # ------------------------------------------------------------------ #
    # Compilation and cache plumbing
    # ------------------------------------------------------------------ #
    def compiled(
        self,
        *,
        alpha: float | None = None,
        size_threshold: int | None = None,
        pruning_report: PruningReport | None = None,
    ) -> CompiledGraph:
        """Return the compiled artifact for these options, cached.

        ``alpha`` is the Observation 3 pruning level (``None`` = keep every
        edge) and ``size_threshold`` the Modani–Dey filter threshold — the
        same options :func:`~repro.core.engine.compiled.compile_graph`
        takes.  Misses are satisfied by derivation from a compatible cached
        base when possible, by a full compilation otherwise.
        """
        return self._cache.get(
            self._graph,
            self._cache_key,
            alpha=alpha,
            size_threshold=size_threshold,
            pruning_report=pruning_report,
        )

    def adopt(
        self,
        compiled: CompiledGraph,
        *,
        alpha: float | None = None,
        size_threshold: int | None = None,
    ) -> None:
        """Seed the cache with a caller-precompiled artifact.

        The caller vouches the artifact matches this session's graph and
        the given compile options; :func:`repro.parallel.parallel_mule`
        uses this to forward its optional precompiled graph.
        """
        self._cache.adopt(
            self._cache_key, compiled, alpha=alpha, size_threshold=size_threshold
        )

    def cache_info(self) -> CacheInfo:
        """Hit/miss/compilation/derivation counters of the backing cache."""
        return self._cache.info()

    def cache_clear(self) -> None:
        """Drop every cached artifact and reset the counters."""
        self._cache.clear()

    # ------------------------------------------------------------------ #
    # Streaming
    # ------------------------------------------------------------------ #
    def stream(
        self,
        request: EnumerationRequest,
        *,
        statistics: SearchStatistics | None = None,
        report: RunReport | None = None,
        pruning_report: PruningReport | None = None,
        cancel: CancellationToken | None = None,
    ) -> Iterator[tuple[frozenset, float]]:
        """Lazily yield ``(clique, probability)`` pairs for a serial request.

        This is the streaming core the legacy ``iter_*`` functions delegate
        to: compilation happens (or is served from cache) on first
        iteration, and emissions arrive in depth-first discovery order.
        Parallel requests cannot stream (shards finish out of order) and a
        ``top_k`` request streams its *qualifying* cliques unranked; both
        restrictions are enforced eagerly, at the call, not at the first
        ``next()``.
        """
        if request.parallel:
            raise ParameterError("parallel requests cannot stream; use enumerate()")
        if request.algorithm == "top_k" and request.alpha is None:
            raise ParameterError("top_k threshold search cannot stream; use enumerate()")
        return self._stream(request, statistics, report, pruning_report, cancel)

    def _stream(
        self,
        request: EnumerationRequest,
        statistics: SearchStatistics | None,
        report: RunReport | None,
        pruning_report: PruningReport | None,
        cancel: CancellationToken | None = None,
    ) -> Iterator[tuple[frozenset, float]]:
        stats = statistics if statistics is not None else SearchStatistics()
        if self._graph.num_vertices == 0:
            return
        compiled = self.compiled(
            alpha=request.compile_alpha(),
            size_threshold=request.compile_size_threshold(),
            pruning_report=pruning_report,
        )
        if request.root_shard is not None:
            compiled = compiled.restrict_roots(
                _root_shard_mask(compiled, request.root_shard)
            )
        yield from run_kernel_search(
            compiled,
            request.alpha,
            _strategy_for(request),
            kernel=request.kernel,
            statistics=stats,
            controls=request.controls,
            report=report,
            cancel=cancel,
        )
        # Reached only when the consumer drains the stream: abandoned
        # generators (early close, cancellation mid-iteration) do not fold
        # partial counters into the engine metrics.
        _observe_engine_run(stats, report)

    # ------------------------------------------------------------------ #
    # The single entry point
    # ------------------------------------------------------------------ #
    def enumerate(self, request: EnumerationRequest) -> EnumerationOutcome:
        """Run one request and return its uniform outcome.

        Dispatch: ``top_k`` requests rank their emissions (descending the
        threshold first when ``alpha`` is omitted); requests whose
        ``workers``/``execution`` select the parallel path run the
        shard/merge pipeline of :mod:`repro.parallel` over the cached
        artifact; everything else is one serial kernel run.
        """
        if request.parallel:
            return self._enumerate_parallel(request)
        if request.algorithm == "top_k":
            if request.alpha is None:
                outcome = self.top_k_search(
                    request.k,
                    min_size=request.min_size,
                    prune_edges=request.prune_edges,
                    controls=request.controls,
                )
                outcome.request = request
                return outcome
            return self._enumerate_top_k(request)
        return self._enumerate_serial(request)

    # ------------------------------------------------------------------ #
    # Batched entry points
    # ------------------------------------------------------------------ #
    def batch(self, requests: Iterable[EnumerationRequest]) -> list[EnumerationOutcome]:
        """Run many requests, sharing one compilation wherever legal.

        Before dispatching, the batch is scanned for plain (non-SNF)
        compile targets and a single base artifact is ensured — unpruned if
        any request needs it, pruned at the batch's minimum α otherwise —
        so every other plain request is served by cheap derivation instead
        of recompiling.  Outcomes are returned in request order and are
        bit-identical (cliques and counters) to running each request on a
        cold session.
        """
        requests = list(requests)
        self.prepare(requests)
        return [self.enumerate(request) for request in requests]

    def sweep(
        self,
        alphas: Sequence[float],
        *,
        algorithm: str = "mule",
        **options: object,
    ) -> list[EnumerationOutcome]:
        """Run one request per α over a single compilation.

        Builds an :class:`EnumerationRequest` per threshold (``options``
        are passed through, e.g. ``controls=``, ``workers=``,
        ``prune_edges=``) and delegates to :meth:`batch` — a five-α MULE
        sweep therefore performs exactly one graph compilation, which is
        what accelerates ``analysis.comparison.alpha_sweep`` and the CLI
        ``compare`` command.
        """
        requests = [
            EnumerationRequest(algorithm=algorithm, alpha=alpha, **options)
            for alpha in alphas
        ]
        return self.batch(requests)

    def prepare(self, requests: Sequence[EnumerationRequest]) -> None:
        """Ensure one derivation base covers every plain compile in ``requests``.

        :meth:`batch` calls this automatically; callers that dispatch the
        requests themselves (interleaved with other work, in their own
        order — e.g. the sweep loops of :mod:`repro.analysis.comparison`)
        invoke it up front so a descending or unsorted α sequence still
        compiles only once instead of recompiling at every point that no
        cached base can legally derive.
        """
        if self._graph.num_vertices == 0:
            return
        target = plan_base_compile(requests)
        if target is None:
            return
        alpha, size_threshold = target
        self.compiled(alpha=alpha, size_threshold=size_threshold)

    # ------------------------------------------------------------------ #
    # Top-k threshold search
    # ------------------------------------------------------------------ #
    def top_k_search(
        self,
        k: int,
        *,
        initial_alpha: float = 0.5,
        shrink_factor: float = 0.1,
        min_alpha: float = 1e-9,
        min_size: int = 2,
        prune_edges: bool = True,
        controls: RunControls | None = None,
    ) -> EnumerationOutcome:
        """Rank the ``k`` most probable maximal cliques without a chosen α.

        Implements the geometric threshold descent of
        :func:`repro.core.top_k.top_k_by_threshold_search` (which delegates
        here): start at ``initial_alpha``, multiply by ``shrink_factor``
        until at least ``k`` qualifying cliques are found or ``min_alpha``
        is reached.  ``controls.time_budget_seconds`` spans *all* passes; a
        truncated pass ends the descent.  The outcome's ``alpha`` is the
        final threshold tried and its statistics/report describe the final
        pass (the enumeration that produced the ranking).
        """
        if not 0.0 < shrink_factor < 1.0:
            raise ParameterError(
                f"shrink_factor must be in (0, 1), got {shrink_factor}"
            )
        if not 0.0 < initial_alpha <= 1.0:
            raise ParameterError(
                f"initial_alpha must be in (0, 1], got {initial_alpha}"
            )

        deadline = None
        if controls is not None and controls.time_budget_seconds is not None:
            deadline = monotonic() + controls.time_budget_seconds

        alpha = initial_alpha
        with Stopwatch() as timer:
            while True:
                pass_controls = controls
                if deadline is not None:
                    pass_controls = replace(
                        controls, time_budget_seconds=max(0.0, deadline - monotonic())
                    )
                outcome = self._enumerate_top_k(
                    EnumerationRequest(
                        algorithm="top_k",
                        alpha=alpha,
                        k=k,
                        min_size=min_size,
                        prune_edges=prune_edges,
                        controls=pass_controls,
                    )
                )
                if len(outcome.records) >= k or alpha <= min_alpha or outcome.truncated:
                    break
                alpha = max(alpha * shrink_factor, min_alpha)
        # Stopwatch only fills .elapsed on exit, so the descent total must be
        # stamped outside the context.
        outcome.elapsed_seconds = timer.elapsed
        return outcome

    # ------------------------------------------------------------------ #
    # Dispatch targets
    # ------------------------------------------------------------------ #
    def _enumerate_serial(self, request: EnumerationRequest) -> EnumerationOutcome:
        statistics = SearchStatistics()
        report = RunReport()
        records: list[CliqueRecord] = []
        with Stopwatch() as timer:
            for members, probability in self.stream(
                request, statistics=statistics, report=report
            ):
                records.append(CliqueRecord(vertices=members, probability=probability))
        return EnumerationOutcome(
            algorithm=request.label,
            alpha=request.alpha,
            records=records,
            statistics=statistics,
            report=report,
            elapsed_seconds=timer.elapsed,
            request=request,
        )

    def _enumerate_top_k(self, request: EnumerationRequest) -> EnumerationOutcome:
        outcome = self._enumerate_serial(request)
        outcome.records = rank_by_probability(outcome.records, request.k)
        return outcome

    def _enumerate_parallel(self, request: EnumerationRequest) -> EnumerationOutcome:
        # The parallel layer builds on the session (one compilation owner),
        # so the import is deferred to keep the module graph acyclic.
        from ..parallel.runner import default_workers, parallel_enumerate

        workers = request.workers if request.workers is not None else default_workers()
        statistics = SearchStatistics()
        report = RunReport()
        records: list[CliqueRecord] = []
        with Stopwatch() as timer:
            if self._graph.num_vertices > 0:
                compiled = self.compiled(alpha=request.compile_alpha())
                records, statistics, stop_reason = parallel_enumerate(
                    compiled,
                    request.alpha,
                    workers=workers,
                    controls=request.controls,
                    num_shards=request.num_shards,
                    backend=request.backend,
                    kernel=request.kernel,
                )
                report.stop_reason = stop_reason
                report.cliques_emitted = len(records)
                _observe_engine_run(statistics, report)
        return EnumerationOutcome(
            algorithm=request.label,
            alpha=request.alpha,
            records=records,
            statistics=statistics,
            report=report,
            elapsed_seconds=timer.elapsed,
            request=request,
        )

    def __repr__(self) -> str:
        return f"MiningSession(graph={self._graph!r}, cache={self._cache!r})"


def plan_base_compile(
    requests: Sequence[EnumerationRequest],
) -> "tuple[float | None, int | None] | None":
    """Pick the one compile target that derives a whole batch, or ``None``.

    This is the base-selection rule :meth:`MiningSession.prepare` and the
    service scheduler share (one implementation, so the service's
    "a sweep compiles exactly once" guarantee cannot drift): consider only
    plain (non-SNF) requests with a threshold; if any of them needs an
    unpruned artifact, that is the base (it derives every other level),
    otherwise prune at the batch's minimum α.  Returns
    ``(alpha, size_threshold)`` compile options, or ``None`` when the batch
    has nothing to pre-plan.
    """
    plain = [
        request
        for request in requests
        if request.compile_size_threshold() is None and request.alpha is not None
    ]
    if not plain:
        return None
    levels = [request.compile_alpha() for request in plain]
    if any(level is None for level in levels):
        # An unpruned artifact is requested anyway; it derives the rest.
        return (None, None)
    return (min(levels), None)


def _root_shard_mask(compiled: CompiledGraph, labels: Sequence) -> int:
    """Translate a request's ``root_shard`` labels into a root bitmask.

    Labels are resolved against the compiled artifact's stable vertex
    indexing (pruning never drops vertices, so the mapping is the same at
    every α); a label the graph does not contain is a caller error.
    """
    mask = 0
    for label in labels:
        index = compiled.index_of.get(label)
        if index is None:
            raise ParameterError(
                f"root_shard names vertex {label!r}, which is not in the graph"
            )
        mask |= 1 << index
    return mask


def _strategy_for(request: EnumerationRequest) -> EnumerationStrategy:
    """Instantiate the engine strategy a serial request dispatches to."""
    algorithm = request.algorithm
    if algorithm in ("mule", "fast"):
        return MuleStrategy()
    if algorithm == "noip":
        return NoIncrementalStrategy()
    if algorithm == "large":
        return LargeCliqueStrategy(request.size_threshold)
    if algorithm == "top_k":
        return TopKStrategy(min_size=request.min_size)
    raise ParameterError(f"no strategy for algorithm {algorithm!r}")
