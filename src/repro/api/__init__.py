"""The session API — compile-once caching and a single enumeration entry point.

This package is the serving surface of the library (and the layer the
ROADMAP's batching/caching scale-out items live in):

* :class:`MiningSession` — a per-graph facade owning a compiled-graph
  cache; :meth:`~MiningSession.enumerate` dispatches any algorithm,
  :meth:`~MiningSession.sweep` / :meth:`~MiningSession.batch` run many
  (α, request) points over one compilation.
* :class:`EnumerationRequest` — the typed request model (algorithm, α or
  ``k``, preprocessing knobs, run controls, workers).
* :class:`EnumerationOutcome` — the uniform result (records + statistics +
  report + stop/truncation provenance) every entry point returns.
* :class:`CompiledGraphCache` / :class:`CacheInfo` — the artifact store,
  shareable across sessions, with derivation-aware lookup and hit/miss
  accounting (global and per graph fingerprint).
* :class:`GraphStore` / :class:`GraphInfo` — graphs as first-class named
  resources: many sessions behind one shared cache, addressed by
  registered name or fingerprint, with budgeted LRU eviction.  The
  substrate of multi-graph hosting in :mod:`repro.service`.

The legacy free functions (``mule``, ``fast_mule``, ``dfs_noip``,
``large_mule``, ``top_k_*``, ``parallel_mule``) delegate here; use the
session directly whenever you run more than one enumeration on a graph.
"""

from .cache import CacheInfo, CompiledGraphCache
from .outcome import EnumerationOutcome
from .request import ALGORITHMS, EnumerationRequest
from .session import MiningSession
from .store import GraphInfo, GraphStore

__all__ = [
    "MiningSession",
    "EnumerationRequest",
    "EnumerationOutcome",
    "CompiledGraphCache",
    "CacheInfo",
    "GraphStore",
    "GraphInfo",
    "ALGORITHMS",
]
