"""Graphs as first-class named resources — the multi-graph session owner.

:class:`GraphStore` is the resource layer above :class:`MiningSession`: it
owns many sessions — one per distinct graph, all sharing a single LRU
:class:`~repro.api.cache.CompiledGraphCache` — and addresses them by
*reference*: a registered name (``"ppi"``) or the graph's content
fingerprint (full hex digest, or any unambiguous prefix of at least
:data:`MIN_PREFIX_LENGTH` characters).  It is the engine behind multi-graph
dataset hosting in :mod:`repro.service`: one server process holds one
store, and every wire request names the graph it wants.

Resource model
--------------
* :meth:`GraphStore.add` registers a graph (deduplicated by fingerprint)
  and returns its :class:`GraphInfo`; :meth:`GraphStore.add_dataset` does
  the same for a named Table 1 analog from :mod:`repro.datasets`.
* :meth:`GraphStore.session` resolves a reference to the graph's
  :class:`MiningSession` (every resolution touches the LRU order).
* :meth:`GraphStore.get` / :meth:`list` / :meth:`remove` complete the CRUD
  surface; removal also drops the graph's compiled artifacts and counters
  from the shared cache.
* The first graph added becomes the *default* (what versionless callers —
  the ``/v1`` wire surface — run against); :meth:`set_default` moves it.

Budgeted eviction
-----------------
``max_graphs`` bounds how many graphs stay resident.  Adding beyond the
budget evicts the least recently *used* unpinned graph (sessions touched by
:meth:`session` stay hot); pinned graphs — the operator's ``--dataset``
flags, the default graph — are never evicted.  When every resident graph is
pinned and the budget is exhausted, :meth:`add` raises
:class:`~repro.errors.StoreError` instead of silently dropping a pin.

>>> from repro.uncertain.graph import UncertainGraph
>>> store = GraphStore()
>>> info = store.add(UncertainGraph(edges=[(1, 2, 0.9), (2, 3, 0.8)]), name="toy")
>>> store.get("toy").num_edges
2
>>> store.session("toy") is store.session(info.fingerprint)
True
>>> [entry.name for entry in store.list()]
['toy']
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import NamedTuple

from ..errors import GraphNotFoundError, StoreError
from ..uncertain.graph import UncertainGraph
from .cache import CacheInfo, CompiledGraphCache
from .session import MiningSession

__all__ = ["GraphInfo", "GraphStore", "MIN_PREFIX_LENGTH", "GRAPH_NAME_PATTERN"]

#: Shortest fingerprint prefix accepted as a graph reference.  Shorter
#: prefixes are rejected outright (not merely "not found") so a typo'd
#: short token cannot silently start matching once the store grows.
MIN_PREFIX_LENGTH = 8

#: Registered names: URL-safe, start alphanumeric, no whitespace.  Keeping
#: names out of the hex alphabet's shape is not required — resolution
#: prefers exact names over fingerprint prefixes — but the charset must
#: survive a URL path segment unescaped.  Exported so other layers (the
#: CLI's file-stem naming) validate against the same rule.
GRAPH_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")

#: Default graph budget of a store (None = unbounded — right for library
#: use where the caller controls registrations).  Upload-accepting
#: services should bound residency; ``repro-mule serve`` defaults to 64.
DEFAULT_MAX_GRAPHS = None


class GraphInfo(NamedTuple):
    """The wire-facing description of one stored graph."""

    fingerprint: str
    name: str | None
    num_vertices: int
    num_edges: int
    pinned: bool
    default: bool


@dataclass
class _Entry:
    """One resident graph: its session plus resource metadata."""

    session: MiningSession
    name: str | None
    pinned: bool


class GraphStore:
    """A thread-safe registry of mining sessions over one shared cache.

    Parameters
    ----------
    cache:
        Optional externally-owned :class:`CompiledGraphCache`; by default
        the store creates one bounded at ``cache_maxsize``.
    cache_maxsize:
        Bound of the store-created cache (ignored when ``cache`` is given).
    max_graphs:
        Graph residency budget (``None`` = unbounded).  See the module
        docstring for the eviction policy.
    """

    #: Bound of the store-owned shared cache: wide enough for sweeps over
    #: several resident graphs, bounded so a long-lived store cannot pin
    #: unbounded compiled artifacts.
    DEFAULT_CACHE_MAXSIZE = 256

    def __init__(
        self,
        *,
        cache: CompiledGraphCache | None = None,
        cache_maxsize: int | None = DEFAULT_CACHE_MAXSIZE,
        max_graphs: int | None = DEFAULT_MAX_GRAPHS,
    ) -> None:
        if max_graphs is not None and max_graphs < 1:
            raise StoreError(f"max_graphs must be positive, got {max_graphs}")
        self._cache = (
            cache if cache is not None else CompiledGraphCache(maxsize=cache_maxsize)
        )
        self._max_graphs = max_graphs
        self._lock = threading.RLock()
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        self._names: dict[str, str] = {}  # name -> fingerprint
        self._default: str | None = None

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def add(
        self,
        graph: UncertainGraph,
        *,
        name: str | None = None,
        pin: bool = False,
    ) -> GraphInfo:
        """Register ``graph`` (idempotent by content) and return its info.

        Re-adding a graph that is already resident is cheap: the existing
        session is kept (its compiled artifacts stay warm) and only the
        metadata is merged — a new ``name`` becomes an additional alias,
        ``pin=True`` upgrades an unpinned entry.  The first graph ever
        added becomes the store's default.

        Raises
        ------
        StoreError
            If ``name`` is malformed or already names a *different* graph,
            or the graph budget is exhausted by pinned entries.
        """
        if name is not None and not GRAPH_NAME_PATTERN.match(name):
            raise StoreError(
                f"invalid graph name {name!r}: names must match "
                f"{GRAPH_NAME_PATTERN.pattern}"
            )
        fingerprint = graph.fingerprint()
        with self._lock:
            if name is not None:
                claimed = self._names.get(name)
                if claimed is not None and claimed != fingerprint:
                    raise StoreError(
                        f"name {name!r} already refers to graph "
                        f"{claimed[:12]}…; remove it first"
                    )
            entry = self._entries.get(fingerprint)
            if entry is None:
                self._make_room_locked()
                entry = _Entry(
                    session=MiningSession(graph, cache=self._cache),
                    name=None,
                    pinned=False,
                )
                self._entries[fingerprint] = entry
            self._entries.move_to_end(fingerprint)
            if name is not None:
                self._names[name] = fingerprint
                if entry.name is None:
                    entry.name = name
            entry.pinned = entry.pinned or pin
            if self._default is None:
                self._default = fingerprint
            return self._info_locked(fingerprint, entry)

    def add_dataset(
        self,
        dataset: str,
        *,
        scale: float = 1.0,
        seed: int = 2015,
        name: str | None = None,
        pin: bool = True,
    ) -> GraphInfo:
        """Build a named Table 1 analog and register it.

        ``name`` defaults to the dataset's registry name, so
        ``store.add_dataset("ppi", scale=0.05)`` is immediately
        addressable as ``store.session("ppi")``.  Dataset entries are
        pinned by default — they are the operator's serving catalog, not
        transient uploads.
        """
        # Deferred import: repro.datasets pulls in every generator; the
        # store itself must stay importable from the bare api layer.
        from ..datasets.registry import load_dataset, resolve_dataset_name

        canonical = resolve_dataset_name(dataset)
        graph = load_dataset(canonical, scale=scale, seed=seed)
        return self.add(graph, name=name if name is not None else canonical, pin=pin)

    def ensure(self, graph: UncertainGraph) -> MiningSession:
        """Return (registering on first use) the session serving ``graph``.

        The ad-hoc path the scheduler uses for requests that carry a graph
        object instead of a reference: content-equal graphs share one
        session, and the registration is unpinned/unnamed so the LRU
        budget applies to it.
        """
        fingerprint = graph.fingerprint()
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self.add(graph)
                entry = self._entries[fingerprint]
            else:
                self._entries.move_to_end(fingerprint)
            return entry.session

    # ------------------------------------------------------------------ #
    # Resolution
    # ------------------------------------------------------------------ #
    def resolve(self, ref: str | None) -> str:
        """Resolve a reference to a resident fingerprint.

        ``None`` resolves to the default graph.  A string resolves as a
        registered name first — **exact-name wins**, names are the
        user-chosen namespace — then as a full fingerprint, then as an
        unambiguous fingerprint prefix of at least
        :data:`MIN_PREFIX_LENGTH` characters.

        Name precedence is checked, not blind: a ref that is the
        registered name of one graph *and* a full fingerprint or a
        :data:`MIN_PREFIX_LENGTH`-or-longer fingerprint prefix of a
        **different** graph is truly ambiguous — two graphs claim the
        same token — and raises :class:`~repro.errors.StoreError` rather
        than silently answering the name.  A name that collides only
        with its *own* graph's fingerprint stays unambiguous and
        resolves normally.

        Raises
        ------
        StoreError
            If the reference matches several graphs — multiple
            fingerprint prefixes, or a name colliding with another
            graph's fingerprint.
        GraphNotFoundError
            If the reference matches nothing.
        """
        with self._lock:
            if ref is None:
                if self._default is None:
                    raise StoreError("store has no graphs (no default graph)")
                return self._default
            named = self._names.get(ref)
            if ref in self._entries:
                matches = [ref]
            elif len(ref) >= MIN_PREFIX_LENGTH:
                matches = [fp for fp in self._entries if fp.startswith(ref)]
            else:
                matches = []
            if named is not None:
                rivals = [fp for fp in matches if fp != named]
                if rivals:
                    raise StoreError(
                        f"graph reference {ref!r} is ambiguous: it is the "
                        f"registered name of graph {named[:12]} and a "
                        f"fingerprint prefix of {len(rivals)} other "
                        f"graph(s); use the full fingerprint"
                    )
                return named
            if len(matches) == 1:
                return matches[0]
            if len(matches) > 1:
                raise StoreError(
                    f"graph reference {ref!r} is ambiguous "
                    f"({len(matches)} fingerprints match)"
                )
            known = ", ".join(sorted(self._names)) or "none"
            raise GraphNotFoundError(
                f"unknown graph {ref!r}; registered names: {known}"
            )

    def session(self, ref: str | None = None) -> MiningSession:
        """Return the session of the referenced graph (touching LRU order)."""
        with self._lock:
            fingerprint = self.resolve(ref)
            self._entries.move_to_end(fingerprint)
            return self._entries[fingerprint].session

    def graph(self, ref: str | None = None) -> UncertainGraph:
        """Return the referenced graph object."""
        return self.session(ref).graph

    def get(self, ref: str | None = None) -> GraphInfo:
        """Return the :class:`GraphInfo` of the referenced graph."""
        with self._lock:
            fingerprint = self.resolve(ref)
            return self._info_locked(fingerprint, self._entries[fingerprint])

    def list(self) -> list[GraphInfo]:
        """Return every resident graph, most recently used last."""
        with self._lock:
            return [self._info_locked(fp, entry) for fp, entry in self._entries.items()]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, ref: object) -> bool:
        if not isinstance(ref, str):
            return False
        try:
            self.resolve(ref)
        except StoreError:
            return False
        return True

    # ------------------------------------------------------------------ #
    # Removal and eviction
    # ------------------------------------------------------------------ #
    def remove(self, ref: str) -> GraphInfo:
        """Unregister a graph and drop its compiled artifacts.

        The default graph cannot be removed while other callers may depend
        on versionless resolution — :meth:`set_default` to another graph
        first.  Returns the removed graph's (final) info.

        Removal is a registry operation, not a cancellation: a request
        already holding this graph's session keeps running and may briefly
        re-materialise artifacts in the shared LRU cache; they age out
        under normal pressure (and their counters are pruned with the last
        artifact), they just are no longer addressable.
        """
        with self._lock:
            fingerprint = self.resolve(ref)
            if fingerprint == self._default and len(self._entries) > 1:
                raise StoreError(
                    "cannot remove the default graph; set_default() to "
                    "another graph first"
                )
            info = self._info_locked(fingerprint, self._entries[fingerprint])
            self._drop_locked(fingerprint)
            if self._default == fingerprint:
                self._default = None
            return info

    def set_default(self, ref: str) -> GraphInfo:
        """Designate the graph versionless callers resolve to."""
        with self._lock:
            self._default = self.resolve(ref)
            return self.get(self._default)

    @property
    def default_fingerprint(self) -> str | None:
        """Fingerprint of the default graph (``None`` on an empty store)."""
        with self._lock:
            return self._default

    def _drop_locked(self, fingerprint: str) -> None:
        """Remove one entry and its cache footprint (caller holds the lock)."""
        del self._entries[fingerprint]
        self._names = {
            name: fp for name, fp in self._names.items() if fp != fingerprint
        }
        self._cache.discard(fingerprint)

    def _make_room_locked(self) -> None:
        """Evict LRU unpinned graphs until the budget admits one more entry."""
        if self._max_graphs is None:
            return
        while len(self._entries) >= self._max_graphs:
            victim = next(
                (
                    fp
                    for fp, entry in self._entries.items()
                    if not entry.pinned and fp != self._default
                ),
                None,
            )
            if victim is None:
                raise StoreError(
                    f"graph budget of {self._max_graphs} exhausted and every "
                    f"resident graph is pinned or the default"
                )
            self._drop_locked(victim)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def cache(self) -> CompiledGraphCache:
        """The shared compiled-graph cache behind every session."""
        return self._cache

    def cache_info(self) -> CacheInfo:
        """Global counters of the shared cache."""
        return self._cache.info()

    def cache_info_for(self, ref: str | None = None) -> CacheInfo:
        """Per-graph cache counters of the referenced graph."""
        with self._lock:
            return self._cache.info_for(self.resolve(ref))

    def _info_locked(self, fingerprint: str, entry: _Entry) -> GraphInfo:
        graph = entry.session.graph
        return GraphInfo(
            fingerprint=fingerprint,
            name=entry.name,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            pinned=entry.pinned,
            default=fingerprint == self._default,
        )

    def __repr__(self) -> str:
        with self._lock:
            names = [e.name or fp[:12] for fp, e in self._entries.items()]
        return f"GraphStore(graphs={names!r}, cache={self._cache!r})"
