"""The typed request model of the session API.

:class:`EnumerationRequest` is the single vocabulary every entry point of
:class:`~repro.api.session.MiningSession` speaks: it selects the algorithm
(``mule`` / ``fast`` / ``noip`` / ``large`` / ``top_k``), the threshold α
(or ``k`` for top-k), the preprocessing knobs the legacy config objects
used to carry, the run controls, and the execution mode (serial or sharded
parallel).  Validation happens eagerly at construction, so a malformed
request fails before any graph work starts — with the same exception types
(:class:`~repro.errors.ParameterError`,
:class:`~repro.errors.ProbabilityError`) the legacy free functions raise.

>>> EnumerationRequest(algorithm="mule", alpha=0.5).algorithm
'mule'
>>> EnumerationRequest(algorithm="dfs-noip", alpha=0.5).algorithm  # aliases
'noip'
>>> EnumerationRequest(algorithm="top_k", k=3).k
3
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.engine.controls import RunControls
from ..errors import ParameterError
from ..uncertain.graph import validate_probability

__all__ = ["EnumerationRequest", "ALGORITHMS"]

#: Canonical algorithm names accepted by the session dispatch.
ALGORITHMS = ("mule", "fast", "noip", "large", "top_k")

#: Accepted spellings → canonical name (the CLI and the legacy result
#: labels use dashed forms).
_ALIASES = {
    "mule": "mule",
    "fast": "fast",
    "fast-mule": "fast",
    "fast_mule": "fast",
    "noip": "noip",
    "dfs-noip": "noip",
    "dfs_noip": "noip",
    "large": "large",
    "large-mule": "large",
    "large_mule": "large",
    "top_k": "top_k",
    "top-k": "top_k",
    "topk": "top_k",
}

#: Canonical name → label recorded on results (matches the legacy labels).
ALGORITHM_LABELS = {
    "mule": "mule",
    "fast": "fast-mule",
    "noip": "dfs-noip",
    "large": "large-mule",
    "top_k": "top-k",
}

_EXECUTIONS = ("auto", "serial", "parallel")
_BACKENDS = ("auto", "process", "inline")
_KERNELS = ("auto", "python", "vector")


@dataclass(frozen=True)
class EnumerationRequest:
    """One enumeration job, fully described.

    Parameters
    ----------
    algorithm:
        ``"mule"``, ``"fast"``, ``"noip"``, ``"large"`` or ``"top_k"``
        (dashed aliases like ``"dfs-noip"`` are normalised).
    alpha:
        The probability threshold in ``(0, 1]``.  Required for every
        algorithm except ``top_k``, where omitting it selects the
        threshold-descent search.
    k:
        Number of cliques to rank (``top_k`` only).
    size_threshold:
        Minimum clique size ``t ≥ 2`` (``large`` only).
    min_size:
        Minimum clique size considered by ``top_k`` (default 2 — singletons
        trivially have probability 1 and would dominate any ranking).
    prune_edges:
        Apply the Observation 3 preprocessing (drop edges with ``p(e) < α``
        at compile time).  Mirrors ``MuleConfig.prune_edges``.
    shared_neighborhood_filtering:
        Apply the Modani–Dey pre-filter (``large`` only).  Mirrors
        ``LargeMuleConfig.shared_neighborhood_filtering``.
    controls:
        Optional :class:`~repro.core.engine.controls.RunControls` bounding
        the run.
    workers:
        Worker processes for the sharded parallel path.  ``1`` (default)
        runs serially; ``None`` means "the machine's usable CPU count";
        values above 1 select the parallel path (``mule``/``fast`` only).
    num_shards, backend:
        Sharding knobs forwarded to :mod:`repro.parallel` on the parallel
        path.
    execution:
        ``"auto"`` (parallel iff ``workers`` is ``None`` or > 1),
        ``"serial"``, or ``"parallel"`` (force the shard/merge path even at
        ``workers=1`` — what :func:`repro.parallel.parallel_mule` does, so
        its ``workers=1`` results keep the ``parallel-mule`` label and
        shard-merge semantics).
    root_shard:
        Optional tuple of vertex *labels* confining the search to the
        depth-first subtrees rooted at those vertices
        (:meth:`~repro.core.engine.compiled.CompiledGraph.restrict_roots`).
        This is the wire-level sharding handle of the distributed
        coordinator (:mod:`repro.distributed`): the union of outcomes over
        a root partition is exactly the serial clique set.  ``mule``/
        ``fast`` only, serial execution only; labels must exist in the
        session's graph (unknown labels fail at run time with
        :class:`~repro.errors.ParameterError`).
    kernel:
        Engine kernel backend running the enumeration hot path:
        ``"python"`` (the reference strategy-protocol kernel),
        ``"vector"`` (the fused word-array kernel, MULE family only), or
        ``"auto"`` (vector where supported, python otherwise — the
        default).  Independent of ``backend``, which picks where parallel
        shards *run*; this picks how each shard's inner loop runs.  Both
        kernels are bit-identical, so the choice never changes results.
    """

    algorithm: str = "mule"
    alpha: float | None = None
    k: int | None = None
    size_threshold: int | None = None
    min_size: int = 2
    prune_edges: bool = True
    shared_neighborhood_filtering: bool = True
    controls: RunControls | None = None
    workers: int | None = 1
    num_shards: int | None = None
    backend: str = "auto"
    execution: str = "auto"
    kernel: str = "auto"
    root_shard: tuple | None = None

    def __post_init__(self) -> None:
        canonical = _ALIASES.get(self.algorithm)
        if canonical is None:
            raise ParameterError(
                f"unknown algorithm {self.algorithm!r}; expected one of {ALGORITHMS}"
            )
        object.__setattr__(self, "algorithm", canonical)

        if self.alpha is not None:
            object.__setattr__(
                self, "alpha", validate_probability(self.alpha, what="alpha")
            )
        if canonical != "top_k" and self.alpha is None:
            raise ParameterError(f"algorithm {canonical!r} requires alpha")

        if canonical == "top_k":
            if self.k is None:
                raise ParameterError("algorithm 'top_k' requires k")
            if self.k <= 0:
                raise ParameterError(f"k must be positive, got {self.k}")
            if self.min_size <= 0:
                raise ParameterError(f"min_size must be positive, got {self.min_size}")
        elif self.k is not None:
            raise ParameterError(f"k is only meaningful for top_k, got algorithm {canonical!r}")

        if canonical == "large":
            if self.size_threshold is None:
                raise ParameterError("algorithm 'large' requires size_threshold")
            if self.size_threshold < 2:
                raise ParameterError(
                    f"size_threshold must be at least 2, got {self.size_threshold}"
                )
        elif self.size_threshold is not None:
            raise ParameterError(
                f"size_threshold is only meaningful for large, got algorithm {canonical!r}"
            )

        if self.workers is not None and self.workers < 1:
            raise ParameterError(f"workers must be positive, got {self.workers}")
        if self.execution not in _EXECUTIONS:
            raise ParameterError(
                f"unknown execution {self.execution!r}; expected one of {_EXECUTIONS}"
            )
        if self.backend not in _BACKENDS:
            raise ParameterError(
                f"unknown backend {self.backend!r}; expected one of {_BACKENDS}"
            )
        if self.kernel not in _KERNELS:
            raise ParameterError(
                f"unknown kernel {self.kernel!r}; expected one of {_KERNELS}"
            )
        if self.kernel == "vector" and canonical == "noip":
            # DFS-NOIP is the from-scratch baseline; running it on the
            # fused kernel would change what the experiment measures.
            # 'auto' quietly resolves to the python kernel instead.
            raise ParameterError(
                "algorithm 'noip' (DFS-NOIP) only runs on the python "
                "kernel; use kernel='python' or 'auto'"
            )
        if self.num_shards is not None and self.num_shards < 1:
            raise ParameterError(f"num_shards must be positive, got {self.num_shards}")

        if self.execution == "serial" and self.workers is not None and self.workers > 1:
            raise ParameterError("execution='serial' cannot use workers > 1")
        if self.parallel and canonical not in ("mule", "fast"):
            raise ParameterError(
                f"parallel execution is only supported for mule/fast, got {canonical!r}"
            )

        if self.root_shard is not None:
            shard = tuple(self.root_shard)
            if not shard:
                raise ParameterError("root_shard must name at least one root vertex")
            if len(set(shard)) != len(shard):
                raise ParameterError("root_shard contains duplicate vertices")
            object.__setattr__(self, "root_shard", shard)
            if canonical not in ("mule", "fast"):
                raise ParameterError(
                    f"root_shard is only supported for mule/fast, got {canonical!r}"
                )
            if self.parallel:
                raise ParameterError(
                    "root_shard cannot be combined with parallel execution "
                    "(shard fan-out already owns the root partition)"
                )

    @property
    def parallel(self) -> bool:
        """True when this request runs on the sharded parallel path."""
        if self.execution == "parallel":
            return True
        if self.execution == "serial":
            return False
        return self.workers is None or self.workers > 1

    @property
    def label(self) -> str:
        """Result label this request produces (``parallel-mule`` when sharded)."""
        if self.parallel:
            return "parallel-mule"
        return ALGORITHM_LABELS[self.algorithm]

    def compile_alpha(self) -> float | None:
        """The α the compile stage prunes at (``None`` = no edge pruning)."""
        return self.alpha if self.prune_edges else None

    def compile_size_threshold(self) -> int | None:
        """The shared-neighborhood-filter threshold of the compile stage."""
        if self.algorithm == "large" and self.shared_neighborhood_filtering:
            return self.size_threshold
        return None

    def with_alpha(self, alpha: float) -> "EnumerationRequest":
        """Return a copy of this request at a different threshold.

        >>> EnumerationRequest(algorithm="mule", alpha=0.5).with_alpha(0.25).alpha
        0.25
        """
        return replace(self, alpha=alpha)
