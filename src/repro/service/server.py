"""The HTTP serving surface — ``repro-mule serve`` and :class:`MiningServer`.

A deliberately dependency-free server (stdlib ``http.server`` only) that
exposes one graph-agnostic
:class:`~repro.service.scheduler.EnumerationScheduler` over a
:class:`~repro.api.store.GraphStore` of named graphs:

================================--  ================================================
endpoint                            semantics
================================--  ================================================
``POST /v1/enumerate``              run against the *default* graph (v1, frozen)
``POST /v1/sweep``                  sweep the default graph; one shared compilation
``GET /v1/health``                  liveness + the default graph's shape/fingerprint
``GET /v1/stats``                   cache, scheduler, HTTP and per-graph counters
``GET /v1/metrics``                 the process metrics registry — a ``metrics``
                                    envelope, or Prometheus text with
                                    ``?format=prometheus``
``POST /v2/graphs``                 create a graph: upload an edge set, or build a
                                    named dataset analog server-side
``GET /v2/graphs``                  list resident graphs (``graph-list`` envelope)
``GET /v2/graphs/{ref}``            one graph's ``graph-info``
``DELETE /v2/graphs/{ref}``         unregister a graph (and its cached artifacts)
``POST /v2/graphs/{ref}/enumerate`` run against the referenced graph
``POST /v2/graphs/{ref}/sweep``     sweep the referenced graph
``POST /v2/jobs``                   submit an enumeration asynchronously; returns
                                    its ``job-status`` immediately
``GET /v2/jobs``                    list registered jobs (``job-list`` envelope)
``GET /v2/jobs/{id}``               one job's live ``job-status``
``GET /v2/jobs/{id}/results``       stream result pages as NDJSON chunks
                                    (``?cursor=N`` resumes mid-stream)
``DELETE /v2/jobs/{id}``            cancel a job; returns its post-cancel status
================================--  ================================================

``{ref}`` is a registered name or a fingerprint (unambiguous prefixes of
8+ characters accepted).  Library errors map to ``400`` with an ``error``
envelope (the client re-raises the original exception type); unknown
routes, unknown graph references *and* unknown job ids to ``404``; a
draining server answers every POST with ``503``; anything unexpected maps
to ``500``.  See ``docs/service.md`` for the wire schema and curl-able
examples.

The server is concurrency-correct by construction: each connection gets a
handler thread (``ThreadingHTTPServer``) which *blocks* on the scheduler's
bounded pool, so enumeration concurrency — and therefore memory — is
bounded by ``max_workers`` no matter how many clients connect.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from time import perf_counter
from urllib.parse import parse_qs, urlsplit

from ..api.cache import CacheInfo
from ..api.store import GraphStore
from ..errors import (
    FormatError,
    GraphNotFoundError,
    JobNotFoundError,
    ReproError,
    ServiceError,
    StoreError,
)
from ..obs import registry as _obs_registry
from ..obs import render_prometheus, tracer as _obs_tracer, write_chrome_trace
from ..uncertain.graph import UncertainGraph
from . import codec
from .jobs import Job, JobState
from .scheduler import EnumerationScheduler

__all__ = ["MiningServer", "DEFAULT_PORT"]

_HTTP_REQUESTS = _obs_registry().counter(
    "http_requests_total",
    "HTTP requests served, by normalised endpoint, method and status.",
    labelnames=("endpoint", "method", "status"),
)
_HTTP_REQUEST_SECONDS = _obs_registry().histogram(
    "http_request_seconds",
    "Wall seconds per HTTP request, by normalised endpoint.",
    labelnames=("endpoint",),
)

#: Default TCP port of ``repro-mule serve``.
DEFAULT_PORT = 8765

#: Largest enumeration/sweep request body accepted, in bytes.  Those
#: requests are tiny (an envelope of scalars); the cap exists so a
#: misbehaving client cannot make a handler thread buffer arbitrary data.
MAX_REQUEST_BYTES = 1 << 20

#: Largest ``POST /v2/graphs`` body accepted — graph uploads legitimately
#: carry whole edge lists, so their cap is wider.
MAX_UPLOAD_BYTES = 64 << 20


class _ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying a backreference to the MiningServer."""

    daemon_threads = True
    service: "MiningServer"


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-mule"

    #: Status of the last response written on this connection; 0 means no
    #: response made it out (the socket died mid-handler).
    _response_status = 0

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def _handle(self, route, *, counted: bool) -> None:
        """Run one route with the uniform error→status mapping.

        ``counted`` selects whether the request lands in the HTTP
        received/failed counters — mutating verbs (POST/DELETE) are
        counted, read-only polls (GET health/stats/listings) are not,
        matching the original v1 accounting.  Every request additionally
        lands in the per-endpoint metrics (count, status, latency) and —
        when the server was given a trace directory — leaves a Chrome
        trace file behind.
        """
        service = self.server.service
        if counted:
            service._count_request()
        endpoint = _endpoint_label(self.path)
        started = perf_counter()
        self._response_status = 0
        root = None
        try:
            with _obs_tracer().span(
                "http.request", endpoint=endpoint, method=self.command
            ) as root:
                try:
                    route(service)
                except BaseException as exc:  # noqa: BLE001 — a handler must not die
                    if counted:
                        service._count_failure()
                    if isinstance(exc, _RouteError):
                        self._respond_error(404, ReproError(str(exc)))
                    elif isinstance(exc, _ServerDraining):
                        self._respond_error(
                            503,
                            ServiceError(
                                "server is draining; not accepting new work"
                            ),
                        )
                    elif isinstance(exc, _LengthRequired):
                        # The request body is still sitting unread on the
                        # socket; keeping the connection would desync the
                        # next request.  Drain it (bounded) after
                        # responding: closing with unread bytes in the
                        # receive buffer makes the kernel RST the
                        # connection, which can discard the 411 response
                        # before the client reads it.
                        self.close_connection = True
                        self._respond_error(411, ServiceError(str(exc)))
                        self._drain_request_body()
                    elif isinstance(exc, (GraphNotFoundError, JobNotFoundError)):
                        self._respond_error(404, exc)
                    elif isinstance(exc, ReproError):
                        self._respond_error(400, exc)
                    else:
                        self._respond_error(500, exc)
        finally:
            elapsed = perf_counter() - started
            status = self._response_status or 500
            _HTTP_REQUESTS.labels(
                endpoint=endpoint, method=self.command, status=str(status)
            ).inc()
            _HTTP_REQUEST_SECONDS.labels(endpoint=endpoint).observe(elapsed)
            service._observe_request(root)
            if not service.quiet:
                # The access line shares its clock with the latency
                # histogram above: one measurement, two sinks.
                self.log_message(
                    '"%s" %d %.4fs', self.requestline, status, elapsed
                )

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._handle(self._route_get, counted=False)

    def do_DELETE(self) -> None:  # noqa: N802 (http.server API)
        self._handle(self._route_delete, counted=True)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._handle(self._route_post, counted=True)

    def _route_get(self, service: "MiningServer") -> None:
        split = urlsplit(self.path)
        path = split.path
        if path == "/v1/health":
            self._respond(200, service.health_payload())
        elif path == "/v1/stats":
            self._respond(200, service.stats_payload())
        elif path == "/v1/metrics":
            if _metrics_format(split.query) == "prometheus":
                self._respond_text(200, render_prometheus())
            else:
                self._respond(200, service.metrics_payload())
        elif path == "/v2/graphs":
            self._respond(200, codec.graph_list_to_wire(service.store.list()))
        elif path == "/v2/jobs":
            statuses = [_job_status(job) for job in service.scheduler.jobs.list()]
            self._respond(200, codec.job_list_to_wire(statuses))
        else:
            ref = _graph_ref(path)
            if ref is not None:
                self._respond(200, codec.graph_info_to_wire(service.store.get(ref)))
                return
            target = _job_path(path)
            if target is None:
                raise _RouteError(f"unknown endpoint {self.path}")
            job_id, results = target
            job = service.scheduler.jobs.get(job_id)
            if results:
                cursor = _cursor_param(split.query)
                # Eager cursor validation happens here, *before* any
                # response bytes — a bad cursor is still a clean 400.
                self._stream_ndjson(job, job.stream_chunks(cursor))
            else:
                self._respond(200, codec.job_status_to_wire(_job_status(job)))

    def _route_delete(self, service: "MiningServer") -> None:
        target = _job_path(self.path)
        if target is not None and not target[1]:
            job = service.scheduler.jobs.get(target[0])
            job.cancel()
            self._respond(200, codec.job_status_to_wire(_job_status(job)))
            return
        ref = _graph_ref(self.path)
        if ref is None:
            raise _RouteError(f"unknown endpoint {self.path}")
        self._respond(200, codec.graph_info_to_wire(service.store.remove(ref)))

    def _route_post(self, service: "MiningServer") -> None:
        if service.draining:
            raise _ServerDraining
        if self.path == "/v1/enumerate":
            payload = codec.decode(self._read_body())
            request = codec.request_from_wire(payload)
            outcome = service.scheduler.run(request)
            self._respond(200, codec.outcome_to_wire(outcome))
        elif self.path == "/v1/sweep":
            payload = codec.decode(self._read_body())
            base, alphas = codec.sweep_from_wire(payload)
            requests = [base.with_alpha(alpha) for alpha in alphas]
            outcomes = service.scheduler.batch(requests)
            self._respond(200, codec.outcomes_to_wire(outcomes))
        elif self.path == "/v2/graphs":
            payload = codec.decode(self._read_body(limit=MAX_UPLOAD_BYTES))
            upload = codec.upload_from_wire(payload)
            self._respond(200, codec.graph_info_to_wire(service.create_graph(upload)))
        elif self.path == "/v2/jobs":
            payload = codec.decode(self._read_body())
            ref, request, page_size = codec.job_request_from_wire(payload)
            job = service.scheduler.submit_job(request, ref=ref, page_size=page_size)
            self._respond(200, codec.job_status_to_wire(_job_status(job)))
        else:
            target = _graph_action(self.path)
            if target is None:
                raise _RouteError(f"unknown endpoint {self.path}")
            ref, action = target
            payload = codec.decode(self._read_body())
            if action == "enumerate":
                body_ref, request = codec.ref_request_from_wire(payload)
                _check_body_ref(service.store, ref, body_ref)
                outcome = service.scheduler.run(request, ref=ref)
                self._respond(200, codec.outcome_to_wire(outcome))
            else:
                body_ref, base, alphas = codec.ref_sweep_from_wire(payload)
                _check_body_ref(service.store, ref, body_ref)
                requests = [base.with_alpha(alpha) for alpha in alphas]
                outcomes = service.scheduler.batch(requests, ref=ref)
                self._respond(200, codec.outcomes_to_wire(outcomes))

    # ------------------------------------------------------------------ #
    # I/O helpers
    # ------------------------------------------------------------------ #
    def _read_body(self, *, limit: int = MAX_REQUEST_BYTES) -> bytes:
        encoding = self.headers.get("Transfer-Encoding", "")
        if "chunked" in encoding.lower():
            # stdlib http.server does not decode chunked bodies: reading
            # per Content-Length (absent for chunked requests) would hand
            # the codec an empty body and blame the *payload*.  Refuse
            # the transfer encoding itself instead.
            raise _LengthRequired(
                "chunked transfer encoding is not supported; send the "
                "request body with a Content-Length header"
            )
        raw_length = self.headers.get("Content-Length")
        if raw_length is None:
            raise _LengthRequired(
                f"{self.command} {self.path} requires a request body with "
                f"a Content-Length header"
            )
        try:
            length = int(raw_length)
        except ValueError as exc:
            raise FormatError("invalid Content-Length header") from exc
        if length <= 0:
            raise FormatError("request body is required")
        if length > limit:
            raise FormatError(
                f"request body of {length} bytes exceeds the {limit}-byte limit"
            )
        return self.rfile.read(length)

    def _drain_request_body(self, *, limit: int = MAX_REQUEST_BYTES) -> None:
        """Best-effort discard of an unread request body.

        Bounded by ``limit`` and a short socket timeout so a client
        streaming an unbounded body cannot pin the handler thread.
        """
        try:
            self.connection.settimeout(0.2)
            while limit > 0:
                data = self.connection.recv(min(65536, limit))
                if not data:
                    break
                limit -= len(data)
        except OSError:
            pass

    def _respond(self, status: int, payload: dict) -> None:
        body = codec.encode(payload)
        self._send_body(status, "application/json", body)

    def _respond_text(self, status: int, text: str) -> None:
        """Plain-text response (the Prometheus exposition format)."""
        self._send_body(
            status, "text/plain; version=0.0.4; charset=utf-8", text.encode("utf-8")
        )

    def _send_body(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _stream_ndjson(self, job: Job, chunks) -> None:
        """Write a job's result chunks as a chunked NDJSON response.

        One wire envelope per HTTP chunk, flushed immediately, so the
        client observes records as the producer emits them.  A consumer
        that disconnects mid-write never acknowledged the chunk it was
        reading — the generator is closed without releasing that page, so
        a reconnect at the same cursor resumes exactly there.
        """
        self.close_connection = True
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.send_header("Connection", "close")
        self.end_headers()
        try:
            for chunk in chunks:
                wire = codec.JobChunk(
                    job=job.id,
                    seq=chunk.seq,
                    records=chunk.records,
                    final=chunk.final,
                    summary=chunk.summary,
                    error=chunk.error,
                )
                self._write_http_chunk(codec.encode(codec.job_chunk_to_wire(wire)))
            self._write_http_chunk(b"")
        except (BrokenPipeError, ConnectionResetError):
            pass
        finally:
            chunks.close()

    def _write_http_chunk(self, data: bytes) -> None:
        self.wfile.write(f"{len(data):X}\r\n".encode("ascii") + data + b"\r\n")
        self.wfile.flush()

    def _respond_error(self, status: int, exc: BaseException) -> None:
        # An error may leave an unread (or unreadable) request body on the
        # socket; under HTTP/1.1 keep-alive those bytes would be parsed as
        # the next request line, desynchronising the connection.  Closing
        # after an error response is always safe.
        self.close_connection = True
        self._respond(status, codec.error_to_wire(exc))

    def send_response(self, code: int, message: "str | None" = None) -> None:
        self._response_status = int(code)
        BaseHTTPRequestHandler.send_response(self, code, message)

    def log_request(self, code: object = "-", size: object = "-") -> None:
        # Suppress the stdlib per-response line: the timed access line in
        # ``_handle`` (status + wall duration, sharing the latency
        # histogram's measurement) replaces it.
        pass

    def log_message(self, format: str, *args: object) -> None:
        # Route access logs through the server's quiet flag instead of
        # unconditionally spamming stderr (the default behaviour).
        if not self.server.service.quiet:
            BaseHTTPRequestHandler.log_message(self, format, *args)


class _RouteError(Exception):
    """Request for a path the service does not serve."""


class _ServerDraining(Exception):
    """Submission while the server is draining — mapped to HTTP 503."""


class _LengthRequired(Exception):
    """Body-carrying request without a usable Content-Length — HTTP 411.

    ``http.server`` never decodes chunked transfer encoding, so trusting
    a missing/zero Content-Length would silently read an *empty* body
    (and leave the chunked payload on the socket to corrupt the next
    keep-alive request).  Refusing with 411 up front turns that silent
    misread into an actionable client error.
    """


def _job_path(path: str) -> "tuple[str, bool] | None":
    """Parse ``/v2/jobs/{id}`` or ``/v2/jobs/{id}/results``.

    Returns ``(job_id, wants_results)``, or ``None`` for non-job paths.
    """
    parts = path.strip("/").split("/")
    if len(parts) < 3 or parts[0] != "v2" or parts[1] != "jobs" or not parts[2]:
        return None
    if len(parts) == 3:
        return parts[2], False
    if len(parts) == 4 and parts[3] == "results":
        return parts[2], True
    return None


def _endpoint_label(path: str) -> str:
    """Collapse a request path to its route template.

    Metric labels must have bounded cardinality, so per-resource segments
    (graph refs, job ids) are collapsed to placeholders and paths the
    router does not serve collapse to one ``(unknown)`` bucket.
    """
    path = urlsplit(path).path
    if path in _KNOWN_ENDPOINTS:
        return path
    action = _graph_action(path)
    if action is not None:
        return f"/v2/graphs/{{ref}}/{action[1]}"
    if _graph_ref(path) is not None:
        return "/v2/graphs/{ref}"
    target = _job_path(path)
    if target is not None:
        return "/v2/jobs/{id}/results" if target[1] else "/v2/jobs/{id}"
    return "(unknown)"


_KNOWN_ENDPOINTS = frozenset(
    {
        "/v1/enumerate",
        "/v1/sweep",
        "/v1/health",
        "/v1/stats",
        "/v1/metrics",
        "/v2/graphs",
        "/v2/jobs",
    }
)


def _metrics_format(query: str) -> str:
    """Parse ``?format=json|prometheus`` (default ``json``), strictly."""
    params = parse_qs(query, keep_blank_values=True)
    unknown = set(params) - {"format"}
    if unknown:
        raise FormatError(f"unknown query parameters {sorted(unknown)}")
    values = params.get("format")
    if not values:
        return "json"
    chosen = values[-1]
    if chosen not in ("json", "prometheus"):
        raise FormatError(
            f"unknown metrics format {chosen!r}; expected 'json' or 'prometheus'"
        )
    return chosen


def _cursor_param(query: str) -> int:
    """Parse the ``?cursor=N`` resume position (default 0)."""
    params = parse_qs(query, keep_blank_values=True)
    unknown = set(params) - {"cursor"}
    if unknown:
        raise FormatError(f"unknown query parameters {sorted(unknown)}")
    values = params.get("cursor")
    if not values:
        return 0
    try:
        return int(values[-1])
    except ValueError as exc:
        raise FormatError(f"cursor must be an integer, got {values[-1]!r}") from exc


def _job_status(job: Job) -> codec.JobStatus:
    """Snapshot one job as its wire status.

    ``state`` is read before ``error``: a job can only flip to ``failed``
    with its error already stored (both happen under the job's lock), so
    this ordering can never observe the half-written pair the wire
    encoder rejects.
    """
    state = job.state
    snapshot = job.progress()
    return codec.JobStatus(
        id=job.id,
        state=state,
        cliques_emitted=snapshot.cliques_emitted,
        frames_expanded=snapshot.frames_expanded,
        elapsed_seconds=snapshot.elapsed_seconds,
        records=job.records_total,
        error=job.error if state == JobState.FAILED else None,
    )


def _graph_ref(path: str) -> str | None:
    """Parse ``/v2/graphs/{ref}`` (no trailing action) or return ``None``."""
    parts = path.strip("/").split("/")
    if len(parts) == 3 and parts[0] == "v2" and parts[1] == "graphs" and parts[2]:
        return parts[2]
    return None


def _graph_action(path: str) -> "tuple[str, str] | None":
    """Parse ``/v2/graphs/{ref}/enumerate|sweep`` or return ``None``."""
    parts = path.strip("/").split("/")
    if (
        len(parts) == 4
        and parts[0] == "v2"
        and parts[1] == "graphs"
        and parts[2]
        and parts[3] in ("enumerate", "sweep")
    ):
        return parts[2], parts[3]
    return None


def _check_body_ref(store: GraphStore, path_ref: str, body_ref: str | None) -> None:
    """Reject a body whose graph reference contradicts the URL's.

    A v2 body may omit its ``graph`` field (the path is authoritative) or
    repeat it; naming a *different* graph is a client bug worth failing
    loudly instead of silently trusting one of the two.
    """
    if body_ref is None:
        return
    if store.resolve(body_ref) != store.resolve(path_ref):
        raise StoreError(
            f"request body names graph {body_ref!r} but the URL names "
            f"{path_ref!r}"
        )


class MiningServer:
    """A catalog of graphs served over HTTP.

    Parameters
    ----------
    target:
        What to serve: an :class:`~repro.uncertain.graph.UncertainGraph`
        (the classic single-graph server — it becomes the store's pinned
        default graph) or a pre-populated
        :class:`~repro.api.store.GraphStore` (multi-graph hosting; its
        default graph answers the ``/v1`` surface).
    host, port:
        Bind address; ``port=0`` picks a free ephemeral port (the bound
        port is available as :attr:`port` — what the tests use).
    max_workers:
        Enumeration thread-pool bound, forwarded to the scheduler.
    default_kernel:
        Engine kernel applied to requests arriving with ``kernel="auto"``
        (forwarded to the scheduler; what ``repro-mule serve --kernel``
        sets).  Explicit per-request kernels always win.
    quiet:
        Suppress per-request access logging (default ``True``; the CLI
        turns logging on).  Access lines carry the response status and
        wall duration, measured by the same clock as the request latency
        histograms.
    trace_dir:
        When set, every HTTP request writes its span tree as a Chrome
        trace-event JSON file (``request-NNNNNN.json``) into this
        directory — load them in ``chrome://tracing`` or Perfetto.  The
        directory is created on demand.

    >>> g = UncertainGraph(edges=[(1, 2, 0.9), (2, 3, 0.9), (1, 3, 0.9)])
    >>> with MiningServer(g, port=0) as server:
    ...     server.url.startswith("http://127.0.0.1:")
    True
    """

    def __init__(
        self,
        target: "UncertainGraph | GraphStore",
        *,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        max_workers: int | None = None,
        default_kernel: str = "auto",
        quiet: bool = True,
        trace_dir: "str | Path | None" = None,
    ) -> None:
        self.quiet = quiet
        self._scheduler = EnumerationScheduler(
            target, max_workers=max_workers, default_kernel=default_kernel
        )
        self._httpd = _ServiceHTTPServer((host, port), _Handler)
        self._httpd.service = self
        self._serve_thread: threading.Thread | None = None
        self._entered_serve = False
        self._closed = False
        self._draining = False
        self._http_lock = threading.Lock()
        self._http_received = 0
        self._http_failed = 0
        self._trace_dir = Path(trace_dir) if trace_dir is not None else None
        self._trace_lock = threading.Lock()
        self._trace_seq = 0
        if self._trace_dir is not None:
            self._trace_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def scheduler(self) -> EnumerationScheduler:
        """The scheduler executing this server's requests."""
        return self._scheduler

    @property
    def store(self) -> GraphStore:
        """The graph store this server hosts."""
        return self._scheduler.store

    @property
    def graph(self) -> UncertainGraph:
        """The default graph (the one the ``/v1`` surface serves)."""
        return self._scheduler.graph

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound TCP port (resolved even when constructed with 0)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should connect to."""
        return f"http://{self.host}:{self.port}"

    @property
    def draining(self) -> bool:
        """Whether the server is refusing new submissions (HTTP 503)."""
        return self._draining

    def create_graph(self, upload: "codec.GraphUpload"):
        """Materialise a ``graph-upload`` into the store (POST /v2/graphs)."""
        store = self.store
        if upload.graph is not None:
            return store.add(upload.graph, name=upload.name)
        kwargs: dict = {}
        if upload.scale is not None:
            kwargs["scale"] = upload.scale
        if upload.seed is not None:
            kwargs["seed"] = upload.seed
        # Uploaded datasets are *not* pinned: only the operator's CLI
        # catalog is; client-created graphs stay subject to the LRU budget.
        return store.add_dataset(
            upload.dataset, name=upload.name, pin=False, **kwargs
        )

    def health_payload(self) -> dict:
        store = self.store
        if store.default_fingerprint is None:
            graph_section = None
        else:
            session = store.session(None)
            graph = session.graph
            graph_section = {
                "num_vertices": graph.num_vertices,
                "num_edges": graph.num_edges,
                "fingerprint": session.fingerprint,
            }
        return {
            "schema": codec.SCHEMA_VERSION,
            "kind": "health",
            "status": "ok",
            "graph": graph_section,
        }

    def stats_payload(self) -> dict:
        """Assemble the ``/v1/stats`` payload.

        Each component section is an *atomic* snapshot of that component:
        the aggregate cache counters and every per-graph breakdown come
        from a single lock acquisition
        (:meth:`~repro.api.cache.CompiledGraphCache.counters_snapshot`),
        so within one payload the per-graph sums can never exceed the
        aggregate; scheduler, HTTP and job counters are likewise each
        read under their own lock.  *Cross*-component consistency is
        deliberately best-effort — the sections are sampled one after
        another without a global pause, so a request landing mid-assembly
        may appear in one section and not yet in another.
        """
        store = self.store
        # One lock acquisition yields the aggregate *and* every per-graph
        # breakdown (the old aggregate-then-per-graph pair of reads could
        # tear: a compile landing between them made the per-graph sums
        # exceed the aggregate).  A graph deleted between list() and here
        # simply reports zero counters instead of 404-ing the poll.
        cache, per_graph = store.cache.counters_snapshot()
        scheduler = self._scheduler.stats()
        zero = CacheInfo(
            hits=0, misses=0, compilations=0, derivations=0, entries=0
        )
        graphs = {
            info.fingerprint: {
                "name": info.name,
                "default": info.default,
                "cache": dict(per_graph.get(info.fingerprint, zero)._asdict()),
            }
            for info in store.list()
        }
        with self._http_lock:
            received, failed = self._http_received, self._http_failed
        return {
            "schema": codec.SCHEMA_VERSION,
            "kind": "service-stats",
            "cache": dict(cache._asdict()),
            "scheduler": dict(scheduler._asdict()),
            "http": {"received": received, "failed": failed},
            "graphs": graphs,
            "jobs": self._scheduler.jobs.counts(),
        }

    def metrics_payload(self) -> dict:
        """The process metrics registry as a ``metrics`` wire envelope."""
        return codec.metrics_to_wire(_obs_registry().snapshot())

    def _count_request(self) -> None:
        with self._http_lock:
            self._http_received += 1

    def _count_failure(self) -> None:
        with self._http_lock:
            self._http_failed += 1

    def _observe_request(self, span: object) -> None:
        """Persist one finished request span when tracing to a directory."""
        if span is None or self._trace_dir is None:
            return
        with self._trace_lock:
            self._trace_seq += 1
            seq = self._trace_seq
        try:
            write_chrome_trace(self._trace_dir / f"request-{seq:06d}.json", [span])
        except OSError:  # pragma: no cover - tracing must never fail a request
            pass

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` (or Ctrl-C)."""
        self._entered_serve = True
        self._httpd.serve_forever(poll_interval=0.1)

    def start(self) -> "MiningServer":
        """Serve on a daemon background thread; returns ``self``."""
        if self._serve_thread is None:
            # Flag before launching: close() must know a serve loop is (or
            # is about to be) running, or its shutdown() call would hang.
            self._entered_serve = True
            self._serve_thread = threading.Thread(
                target=self._httpd.serve_forever,
                kwargs={"poll_interval": 0.1},
                name="repro-mule-serve",
                daemon=True,
            )
            self._serve_thread.start()
        return self

    def drain(self) -> None:
        """Enter drain mode without stopping the HTTP loop.

        New submissions (every POST) are refused with ``503``; queued jobs
        settle as ``failed("server shutdown")``; producers blocked on a
        full result buffer are woken to fail the same way.  Running jobs
        keep executing and status/result GETs keep working, so attached
        consumers can finish their streams.
        """
        self._draining = True
        self._scheduler.shutdown(wait=False, drain=True)

    def close(self) -> None:
        """Drain, wait for in-flight jobs, then stop serving.

        Drain-first ordering: submissions arriving during the wait get a
        clean ``503`` instead of a connection error, and every in-flight
        job reaches a persistent terminal state (``done``/``cancelled``,
        or ``failed("server shutdown")`` for work the drain cut off)
        before the socket goes away.
        """
        if self._closed:
            return
        self._closed = True
        self._draining = True
        self._scheduler.shutdown(wait=True, drain=True)
        if self._entered_serve:
            # shutdown() blocks until the serve_forever loop exits; it is
            # only safe once the loop has actually been entered.
            self._httpd.shutdown()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
        self._httpd.server_close()

    def __enter__(self) -> "MiningServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"MiningServer(url={self.url!r}, graphs={len(self.store)})"
