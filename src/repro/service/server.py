"""The HTTP serving surface — ``repro-mule serve`` and :class:`MiningServer`.

A deliberately dependency-free server (stdlib ``http.server`` only) that
exposes one :class:`~repro.service.scheduler.EnumerationScheduler` over the
wire codec:

==========================  ====================================================
endpoint                    semantics
==========================  ====================================================
``POST /v1/enumerate``      body: ``enumeration-request`` envelope →
                            ``enumeration-outcome`` envelope
``POST /v1/sweep``          body: ``sweep-request`` envelope →
                            ``outcome-list`` envelope; the whole sweep shares
                            one server-side compilation
``GET /v1/health``          liveness + the served graph's shape/fingerprint
``GET /v1/stats``           cache, scheduler and HTTP counters
==========================  ====================================================

Library errors map to ``400`` with an ``error`` envelope (the client
re-raises the original exception type); unknown routes to ``404``;
anything unexpected to ``500``.  See ``docs/service.md`` for the wire
schema and curl-able examples.

The server is concurrency-correct by construction: each connection gets a
handler thread (``ThreadingHTTPServer``) which *blocks* on the scheduler's
bounded pool, so enumeration concurrency — and therefore memory — is
bounded by ``max_workers`` no matter how many clients connect.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..errors import FormatError, ReproError
from ..uncertain.graph import UncertainGraph
from . import codec
from .scheduler import EnumerationScheduler

__all__ = ["MiningServer", "DEFAULT_PORT"]

#: Default TCP port of ``repro-mule serve``.
DEFAULT_PORT = 8765

#: Largest request body accepted, in bytes.  Requests are tiny (an
#: envelope of scalars); the cap exists so a misbehaving client cannot
#: make a handler thread buffer arbitrary data.
MAX_REQUEST_BYTES = 1 << 20


class _ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying a backreference to the MiningServer."""

    daemon_threads = True
    service: "MiningServer"


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-mule"

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        service = self.server.service
        if self.path == "/v1/health":
            self._respond(200, service.health_payload())
        elif self.path == "/v1/stats":
            self._respond(200, service.stats_payload())
        else:
            self._respond_error(404, ReproError(f"unknown endpoint {self.path}"))

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        service = self.server.service
        service._count_request()
        try:
            payload = codec.decode(self._read_body())
            if self.path == "/v1/enumerate":
                request = codec.request_from_wire(payload)
                outcome = service.scheduler.run(request)
                self._respond(200, codec.outcome_to_wire(outcome))
            elif self.path == "/v1/sweep":
                base, alphas = codec.sweep_from_wire(payload)
                requests = [base.with_alpha(alpha) for alpha in alphas]
                outcomes = service.scheduler.batch(requests)
                self._respond(200, codec.outcomes_to_wire(outcomes))
            else:
                raise _RouteError(f"unknown endpoint {self.path}")
        except _RouteError as exc:
            service._count_failure()
            self._respond_error(404, ReproError(str(exc)))
        except ReproError as exc:
            service._count_failure()
            self._respond_error(400, exc)
        except Exception as exc:  # noqa: BLE001 — a handler must not die
            service._count_failure()
            self._respond_error(500, exc)

    # ------------------------------------------------------------------ #
    # I/O helpers
    # ------------------------------------------------------------------ #
    def _read_body(self) -> bytes:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError as exc:
            raise FormatError("invalid Content-Length header") from exc
        if length <= 0:
            raise FormatError("request body is required")
        if length > MAX_REQUEST_BYTES:
            raise FormatError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_REQUEST_BYTES}-byte limit"
            )
        return self.rfile.read(length)

    def _respond(self, status: int, payload: dict) -> None:
        body = codec.encode(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _respond_error(self, status: int, exc: BaseException) -> None:
        # An error may leave an unread (or unreadable) request body on the
        # socket; under HTTP/1.1 keep-alive those bytes would be parsed as
        # the next request line, desynchronising the connection.  Closing
        # after an error response is always safe.
        self.close_connection = True
        self._respond(status, codec.error_to_wire(exc))

    def log_message(self, format: str, *args: object) -> None:
        # Route access logs through the server's quiet flag instead of
        # unconditionally spamming stderr (the default behaviour).
        if not self.server.service.quiet:
            BaseHTTPRequestHandler.log_message(self, format, *args)


class _RouteError(Exception):
    """POST to a path the service does not serve."""


class MiningServer:
    """One graph served over HTTP.

    Parameters
    ----------
    graph:
        The uncertain graph to serve (compiled artifacts are cached and
        shared across all requests).
    host, port:
        Bind address; ``port=0`` picks a free ephemeral port (the bound
        port is available as :attr:`port` — what the tests use).
    max_workers:
        Enumeration thread-pool bound, forwarded to the scheduler.
    quiet:
        Suppress per-request access logging (default ``True``; the CLI
        turns logging on).

    >>> g = UncertainGraph(edges=[(1, 2, 0.9), (2, 3, 0.9), (1, 3, 0.9)])
    >>> with MiningServer(g, port=0) as server:
    ...     server.url.startswith("http://127.0.0.1:")
    True
    """

    def __init__(
        self,
        graph: UncertainGraph,
        *,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        max_workers: int | None = None,
        quiet: bool = True,
    ) -> None:
        self.quiet = quiet
        self._scheduler = EnumerationScheduler(graph, max_workers=max_workers)
        self._httpd = _ServiceHTTPServer((host, port), _Handler)
        self._httpd.service = self
        self._serve_thread: threading.Thread | None = None
        self._entered_serve = False
        self._closed = False
        self._http_lock = threading.Lock()
        self._http_received = 0
        self._http_failed = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def scheduler(self) -> EnumerationScheduler:
        """The scheduler executing this server's requests."""
        return self._scheduler

    @property
    def graph(self) -> UncertainGraph:
        """The served graph."""
        return self._scheduler.graph

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound TCP port (resolved even when constructed with 0)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should connect to."""
        return f"http://{self.host}:{self.port}"

    def health_payload(self) -> dict:
        graph = self.graph
        return {
            "schema": codec.SCHEMA_VERSION,
            "kind": "health",
            "status": "ok",
            "graph": {
                "num_vertices": graph.num_vertices,
                "num_edges": graph.num_edges,
                "fingerprint": self._scheduler.session.fingerprint,
            },
        }

    def stats_payload(self) -> dict:
        cache = self._scheduler.cache_info()
        scheduler = self._scheduler.stats()
        with self._http_lock:
            received, failed = self._http_received, self._http_failed
        return {
            "schema": codec.SCHEMA_VERSION,
            "kind": "service-stats",
            "cache": dict(cache._asdict()),
            "scheduler": dict(scheduler._asdict()),
            "http": {"received": received, "failed": failed},
        }

    def _count_request(self) -> None:
        with self._http_lock:
            self._http_received += 1

    def _count_failure(self) -> None:
        with self._http_lock:
            self._http_failed += 1

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` (or Ctrl-C)."""
        self._entered_serve = True
        self._httpd.serve_forever(poll_interval=0.1)

    def start(self) -> "MiningServer":
        """Serve on a daemon background thread; returns ``self``."""
        if self._serve_thread is None:
            # Flag before launching: close() must know a serve loop is (or
            # is about to be) running, or its shutdown() call would hang.
            self._entered_serve = True
            self._serve_thread = threading.Thread(
                target=self._httpd.serve_forever,
                kwargs={"poll_interval": 0.1},
                name="repro-mule-serve",
                daemon=True,
            )
            self._serve_thread.start()
        return self

    def close(self) -> None:
        """Stop serving, release the socket and shut the scheduler down."""
        if self._closed:
            return
        self._closed = True
        if self._entered_serve:
            # shutdown() blocks until the serve_forever loop exits; it is
            # only safe once the loop has actually been entered.
            self._httpd.shutdown()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
        self._httpd.server_close()
        self._scheduler.shutdown()

    def __enter__(self) -> "MiningServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"MiningServer(url={self.url!r}, graph={self.graph!r})"
