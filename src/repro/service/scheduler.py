"""Concurrent request scheduling over a shared graph store.

:class:`EnumerationScheduler` is the execution layer between the HTTP
server and the session API: requests run on a bounded thread pool, the
sessions live in one :class:`~repro.api.store.GraphStore` (all behind one
shared :class:`~repro.api.cache.CompiledGraphCache`), and concurrent
compilations of the same (fingerprint, compile options) key are
**single-flighted** — one thread compiles, the rest wait for the artifact
instead of duplicating the most expensive step of a request.

The scheduler is graph-agnostic: it holds no graph of its own.  Every
submission names its target — a store reference (``ref="ppi"`` / a
fingerprint), an ad-hoc graph object (registered in the store on first
use), or nothing at all, which resolves to the store's *default* graph
(how the frozen ``/v1`` wire surface keeps serving its one implicit
graph).  Single-flight keys include the fingerprint, so dedup is preserved
per graph across arbitrarily mixed multi-graph load.

The cache itself is thread-safe but deliberately optimistic: two threads
missing the same key both build it (see
:class:`~repro.api.cache.CompiledGraphCache`).  That is the right trade
for occasional in-process sharing, and exactly the wrong one for a service
where a popular (graph, α) arriving N times at once would compile N times.
The scheduler closes that hole without touching the cache's locking: every
job first funnels its compile target through :meth:`_ensure_compiled`,
so by the time the enumeration asks the cache, the artifact is already
resident.

Execution is job-shaped all the way down (see :mod:`repro.service.jobs`):
:meth:`submit_job` registers a :class:`~repro.service.jobs.Job` — state
machine, paged result buffer, cancellation token — and the synchronous
:meth:`submit`/:meth:`run`/:meth:`batch`/:meth:`sweep` surface is
``submit + await`` over that same pipeline with an unbounded buffer, so
sync and async callers exercise one execution path (and one single-flight
compile funnel).
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Sequence
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import replace
from typing import NamedTuple

from ..api.cache import CacheInfo
from ..api.outcome import EnumerationOutcome
from ..api.request import EnumerationRequest
from ..api.session import MiningSession, plan_base_compile
from ..api.store import GraphStore
from ..core.result import CliqueRecord
from ..errors import JobError, ParameterError, ServiceError
from ..obs import registry as _obs_registry
from ..uncertain.graph import UncertainGraph
from .jobs import DEFAULT_MAX_PENDING_PAGES, Job, JobCancelled, JobRegistry, JobState

__all__ = ["EnumerationScheduler", "SchedulerStats"]

_SCHED_SUBMITTED = _obs_registry().counter(
    "sched_jobs_submitted_total", "Jobs accepted by the scheduler."
)
_SCHED_QUEUE_DEPTH = _obs_registry().gauge(
    "sched_queue_depth", "Submitted jobs no pool worker has picked up yet."
)
_SCHED_INFLIGHT = _obs_registry().gauge(
    "sched_inflight_jobs", "Jobs currently executing on the pool."
)
_SCHED_SINGLE_FLIGHT_WAITS = _obs_registry().counter(
    "sched_single_flight_waits_total",
    "Jobs that piggybacked on another thread's in-flight compilation.",
)

#: Default size of the request thread pool.  Enumeration is CPU-bound pure
#: Python, so the pool exists for scheduling fairness (and for requests
#: that fan out to worker *processes* via ``workers > 1``), not speed-up;
#: a small pool keeps queueing behaviour predictable.
DEFAULT_MAX_WORKERS = 4


class SchedulerStats(NamedTuple):
    """A snapshot of scheduler load and effectiveness counters.

    ``queued`` is the queue depth — submitted jobs no worker has picked up
    yet; ``inflight`` are currently executing; ``completed``/``failed``
    partition finished runner executions.  ``done``/``cancelled`` are the
    registry's cumulative terminal *job* counts (with ``failed`` they give
    the completion mix; ``completed`` counts cancelled jobs too, since
    their runner finished normally).  ``single_flight_waits`` counts jobs
    that piggybacked on another thread's in-progress compilation instead
    of duplicating it.  ``sessions`` is the number of graphs resident in
    the backing store.
    """

    submitted: int
    completed: int
    failed: int
    done: int
    cancelled: int
    inflight: int
    queued: int
    single_flight_waits: int
    max_workers: int
    sessions: int


class EnumerationScheduler:
    """A bounded thread pool running enumeration requests over a store.

    Parameters
    ----------
    target:
        What this scheduler serves: a :class:`GraphStore` (multi-graph
        hosting — the scheduler adopts it), an
        :class:`~repro.uncertain.graph.UncertainGraph` (the classic
        single-graph form; a private store is created around it), or
        ``None`` (an empty private store — graphs arrive per call or via
        :attr:`store`).
    max_workers:
        Thread-pool bound (default :data:`DEFAULT_MAX_WORKERS`).
    default_kernel:
        Engine kernel applied to requests that leave ``kernel`` at
        ``"auto"`` (what ``repro serve --kernel`` sets).  Requests that
        name a kernel explicitly keep it — the deployment default never
        overrides a caller's choice.
    """

    def __init__(
        self,
        target: "GraphStore | UncertainGraph | None" = None,
        *,
        max_workers: int | None = None,
        default_kernel: str = "auto",
    ) -> None:
        if max_workers is None:
            max_workers = DEFAULT_MAX_WORKERS
        if max_workers < 1:
            raise ParameterError(f"max_workers must be positive, got {max_workers}")
        if default_kernel not in ("auto", "python", "vector"):
            raise ParameterError(
                f"unknown default_kernel {default_kernel!r}; "
                f"expected one of ('auto', 'python', 'vector')"
            )
        self._max_workers = max_workers
        self._default_kernel = default_kernel
        if isinstance(target, GraphStore):
            self._store = target
        elif isinstance(target, UncertainGraph):
            self._store = GraphStore()
            self._store.add(target, pin=True)
        elif target is None:
            self._store = GraphStore()
        else:
            raise ParameterError(
                f"scheduler target must be a GraphStore or UncertainGraph, "
                f"got {type(target).__name__}"
            )
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-enumerate"
        )
        self._registry = JobRegistry()
        self._lock = threading.Lock()
        self._inflight_compiles: dict[tuple, threading.Event] = {}
        self._submitted = 0
        self._started = 0
        self._completed = 0
        self._failed = 0
        self._single_flight_waits = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    # Sessions
    # ------------------------------------------------------------------ #
    @property
    def store(self) -> GraphStore:
        """The graph store owning every session this scheduler runs over."""
        return self._store

    @property
    def session(self) -> MiningSession:
        """The default graph's session (raises ``StoreError`` when empty)."""
        return self._store.session(None)

    @property
    def graph(self) -> UncertainGraph:
        """The default graph."""
        return self.session.graph

    def session_for(
        self, graph: UncertainGraph | None, ref: str | None = None
    ) -> MiningSession:
        """Resolve a submission target to its session.

        ``ref`` (store name/fingerprint) wins over ``graph`` (an ad-hoc
        object, registered in the store on first use); both ``None``
        resolves to the default graph.  Sessions are keyed by content
        fingerprint, so two equal graphs share one session — and two
        different graphs can never share artifacts, however interleaved
        their requests are.
        """
        if ref is not None:
            return self._store.session(ref)
        if graph is not None:
            return self._store.ensure(graph)
        return self._store.session(None)

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        request: EnumerationRequest,
        *,
        graph: UncertainGraph | None = None,
        ref: str | None = None,
    ) -> "Future[EnumerationOutcome]":
        """Queue one request; returns a future resolving to its outcome.

        Since the job refactor this is ``submit_job`` with an *unbounded*
        result buffer (the synchronous consumer is ``Future.result()``,
        which needs every page retained) — the sync surface is a thin
        await over the exact pipeline the async endpoints use.
        """
        return self.submit_job(
            request, graph=graph, ref=ref, max_pending_pages=None
        ).future

    def submit_job(
        self,
        request: EnumerationRequest,
        *,
        graph: UncertainGraph | None = None,
        ref: str | None = None,
        page_size: int | None = None,
        max_pending_pages: int | None = DEFAULT_MAX_PENDING_PAGES,
    ) -> Job:
        """Register and queue one request as a :class:`Job`.

        ``max_pending_pages`` bounds the result buffer (``None`` retains
        every page, which synchronous awaiting requires); streaming
        consumers keep the default bound so a slow reader pauses the
        producer instead of growing the server heap.  The returned job
        carries its executor future as ``job.future``.
        """
        request = self._apply_default_kernel(request)
        session = self.session_for(graph, ref)
        # Closed-check, registration and executor hand-off are one atomic
        # step under the scheduler lock: shutdown() takes the same lock to
        # flip _closed, so a submission racing a drain either fails the
        # closed-check up front or lands before the drain sweep — it can
        # never register a job the sweep has already passed over (a zombie
        # stuck queued forever).
        with self._lock:
            if self._closed:
                raise ServiceError("server shutdown: not accepting new jobs")
            self._submitted += 1
            _SCHED_SUBMITTED.inc()
            _SCHED_QUEUE_DEPTH.set(self._submitted - self._started)
            job = self._registry.create(
                request, page_size=page_size, max_pending_pages=max_pending_pages
            )
            try:
                job.future = self._executor.submit(self._run_job, session, job)
            except RuntimeError as exc:
                # The executor refused (interpreter/executor shutdown via a
                # path that bypassed _closed): settle the job as failed so
                # it can never sit queued forever, then surface the
                # refusal in service terms.
                job._shutdown()
                self._submitted -= 1
                _SCHED_QUEUE_DEPTH.set(self._submitted - self._started)
                raise ServiceError(
                    "server shutdown: not accepting new jobs"
                ) from exc
        return job

    def _apply_default_kernel(self, request: EnumerationRequest) -> EnumerationRequest:
        """Resolve ``kernel="auto"`` to this deployment's default kernel.

        Explicit per-request choices always win.  A ``vector`` default is
        not forced onto algorithms the vector kernel cannot run (DFS-NOIP);
        their ``"auto"`` survives and resolves to the python kernel.
        """
        if self._default_kernel == "auto" or request.kernel != "auto":
            return request
        if self._default_kernel == "vector" and request.algorithm == "noip":
            return request
        return replace(request, kernel=self._default_kernel)

    def run(
        self,
        request: EnumerationRequest,
        *,
        graph: UncertainGraph | None = None,
        ref: str | None = None,
    ) -> EnumerationOutcome:
        """Run one request through the pool and block for its outcome."""
        return self.submit(request, graph=graph, ref=ref).result()

    def batch(
        self,
        requests: Iterable[EnumerationRequest],
        *,
        graph: UncertainGraph | None = None,
        ref: str | None = None,
    ) -> list[EnumerationOutcome]:
        """Run many requests concurrently, sharing one compilation.

        Mirrors :meth:`MiningSession.batch`: one derivation base is
        pre-planned before any job starts (itself single-flighted), so N
        concurrent α points cost one compilation plus cheap per-α
        derivations.  The base compile runs *on the pool* — compilation is
        the expensive step ``max_workers`` exists to bound, so it must not
        run on the (unbounded) calling thread.  Outcomes are returned in
        request order.
        """
        requests = list(requests)
        session = self.session_for(graph, ref)
        self._executor.submit(self._prepare, session, requests).result()
        futures = [self.submit(request, graph=graph, ref=ref) for request in requests]
        return [future.result() for future in futures]

    def sweep(
        self,
        alphas: Sequence[float],
        *,
        algorithm: str = "mule",
        graph: UncertainGraph | None = None,
        ref: str | None = None,
        **options: object,
    ) -> list[EnumerationOutcome]:
        """Run one request per α concurrently over a single compilation."""
        requests = [
            EnumerationRequest(algorithm=algorithm, alpha=alpha, **options)
            for alpha in alphas
        ]
        return self.batch(requests, graph=graph, ref=ref)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _run_job(
        self, session: MiningSession, job: Job
    ) -> "EnumerationOutcome | None":
        with self._lock:
            self._started += 1
            _SCHED_QUEUE_DEPTH.set(self._submitted - self._started)
            _SCHED_INFLIGHT.set(self._started - self._completed - self._failed)
        try:
            if job._begin():
                request = job.request
                self._ensure_compiled(
                    session,
                    alpha=request.compile_alpha(),
                    size_threshold=request.compile_size_threshold(),
                )
                self._execute(session, job)
        except BaseException as exc:
            job._fail(exc)
            with self._lock:
                self._failed += 1
                _SCHED_INFLIGHT.set(self._started - self._completed - self._failed)
            raise
        if job.state == JobState.FAILED:
            # Settled as failed without this runner raising (e.g. drained
            # while queued): surface the stored error on the future too.
            with self._lock:
                self._failed += 1
                _SCHED_INFLIGHT.set(self._started - self._completed - self._failed)
            raise job.error
        with self._lock:
            self._completed += 1
            _SCHED_INFLIGHT.set(self._started - self._completed - self._failed)
        try:
            return job.wait(timeout=0)
        except JobError:
            # Pages were streamed out and released; the future's value is
            # unused for such jobs (their consumer is the stream).
            return None

    def _execute(self, session: MiningSession, job: Job) -> None:
        """Drive one running job to a terminal state.

        Streamable requests (serial, unranked) feed the kernel's lazy
        stream straight into the job's page buffer, with the job's token
        checked both in the kernel (run-controls cadence) and on every
        append — so cancellation also reaches a producer blocked on a full
        buffer.  Ranked/parallel requests materialise through
        :meth:`MiningSession.enumerate` and adopt the outcome whole.
        """
        request = job.request
        if self._streamable(request):
            stream = session.stream(
                request,
                statistics=job.statistics,
                report=job.report,
                cancel=job.token,
            )
            try:
                for members, probability in stream:
                    job._append(
                        CliqueRecord(vertices=members, probability=probability)
                    )
            except JobCancelled:
                pass
            finally:
                stream.close()
            job._finish()
        elif job.token.cancelled:
            job._finish()  # cancelled before the buffered run started
        else:
            job._adopt(session.enumerate(request))

    @staticmethod
    def _streamable(request: EnumerationRequest) -> bool:
        """Serial single-process requests stream; ranked/parallel buffer.

        ``top_k`` output is ranked (stream order would not match the
        outcome), and parallel requests merge shards — both run through
        the materialising path and page their records at completion.
        """
        return not request.parallel and request.algorithm != "top_k"

    def _prepare(
        self, session: MiningSession, requests: Sequence[EnumerationRequest]
    ) -> None:
        """Single-flighted equivalent of :meth:`MiningSession.prepare`.

        The base target comes from the same
        :func:`~repro.api.session.plan_base_compile` rule the session
        uses, so the two layers cannot drift apart.
        """
        if session.graph.num_vertices == 0:
            return
        target = plan_base_compile(requests)
        if target is None:
            return
        alpha, size_threshold = target
        self._ensure_compiled(session, alpha=alpha, size_threshold=size_threshold)

    def _ensure_compiled(
        self,
        session: MiningSession,
        *,
        alpha: float | None,
        size_threshold: int | None,
    ) -> None:
        """Materialise one compile target, deduplicating concurrent builds.

        The first thread to request a key becomes its *leader* and builds
        the artifact (a cache hit, a cheap derivation or a full compile —
        the cache decides); every other thread arriving while the build is
        in flight waits on the leader's event and then finds the artifact
        resident.  A leader failure leaves followers to retry in their own
        :meth:`MiningSession.enumerate` call, where the error surfaces with
        full context.
        """
        if session.graph.num_vertices == 0:
            return
        key = (session.fingerprint, alpha, size_threshold)
        with self._lock:
            event = self._inflight_compiles.get(key)
            leader = event is None
            if leader:
                event = threading.Event()
                self._inflight_compiles[key] = event
            else:
                self._single_flight_waits += 1
                _SCHED_SINGLE_FLIGHT_WAITS.inc()
        if leader:
            try:
                session.compiled(alpha=alpha, size_threshold=size_threshold)
            finally:
                with self._lock:
                    del self._inflight_compiles[key]
                event.set()
        else:
            event.wait()

    # ------------------------------------------------------------------ #
    # Introspection and lifecycle
    # ------------------------------------------------------------------ #
    @property
    def jobs(self) -> JobRegistry:
        """The job registry (lookup, listing, per-state counts)."""
        return self._registry

    def stats(self) -> SchedulerStats:
        """Return the current :class:`SchedulerStats` snapshot."""
        job_counts = self._registry.counts()
        with self._lock:
            finished = self._completed + self._failed
            return SchedulerStats(
                submitted=self._submitted,
                completed=self._completed,
                failed=self._failed,
                done=job_counts[JobState.DONE],
                cancelled=job_counts[JobState.CANCELLED],
                inflight=self._started - finished,
                queued=self._submitted - self._started,
                single_flight_waits=self._single_flight_waits,
                max_workers=self._max_workers,
                sessions=len(self._store),
            )

    def cache_info(self) -> CacheInfo:
        """Hit/miss/compilation/derivation counters of the shared cache."""
        return self._store.cache_info()

    def shutdown(self, *, wait: bool = True, drain: bool = False) -> None:
        """Stop accepting work and (optionally) wait for running jobs.

        ``drain=True`` is the server-shutdown mode: queued jobs settle as
        ``failed("server shutdown")`` without running, producers blocked
        on a full result buffer (their consumer is gone) are woken to fail
        the same way, and unstarted executor callables are cancelled.
        Running jobs that are not blocked finish normally.
        """
        with self._lock:
            self._closed = True
        if drain:
            self._registry.drain()
        self._executor.shutdown(wait=wait, cancel_futures=drain)

    def __enter__(self) -> "EnumerationScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"EnumerationScheduler(max_workers={stats.max_workers}, "
            f"sessions={stats.sessions}, submitted={stats.submitted}, "
            f"inflight={stats.inflight})"
        )
