"""The remote clients — drop-in mirrors of the local session API.

:class:`RemoteStore` mirrors :class:`~repro.api.store.GraphStore` over the
wire (nothing beyond ``urllib``): register graphs or server-built dataset
analogs, list/get/remove them, and open a :class:`RemoteSession` on any of
them by name or fingerprint.  Local and remote code become
interchangeable::

    store = GraphStore();  store.add_dataset("ppi", scale=0.05)   # local
    store = connect("http://host:8765")                           # remote
    session = store.session("ppi")          # same call sites either way

:class:`RemoteSession` keeps its original single-graph shape —
``enumerate(request)``, ``sweep(alphas, ...)``, ``cache_info()`` — so
callers swap a local :class:`~repro.api.session.MiningSession` for a
remote one by changing a constructor.  A session without a graph reference
speaks the frozen ``/v1`` surface against the server's default graph; one
opened via ``RemoteStore.session("name")`` speaks ``/v2`` against exactly
that graph, and its ``cache_info()`` returns that graph's *per-graph*
counters — which is what lets "this graph compiled exactly once" be
asserted per graph on a busy multi-graph server.

Outcomes decode to real :class:`~repro.api.outcome.EnumerationOutcome`
objects: clique sets, probabilities, counters and stop provenance are
identical to a local run of the same request (the remote-parity suites and
the throughput benchmark assert this bit-for-bit).

:class:`RemoteJob` is the client face of the async job pipeline: submit
with :meth:`RemoteSession.submit`, poll :meth:`RemoteJob.status`, stream
records as the server produces them with :meth:`RemoteJob.iter_results`
(NDJSON over ``GET /v2/jobs/{id}/results``, with transparent cursor-based
reconnection), or block with :meth:`RemoteJob.wait` — whose reassembled
outcome is bit-identical to a local run of the same request.

Error behaviour: application-level failures re-raise the server-side
exception type (``except ParameterError`` works unchanged, as does
``except GraphNotFoundError`` for dangling references); transport and
protocol failures raise :class:`~repro.errors.ServiceError`.
"""

from __future__ import annotations

import http.client
import time
import urllib.error
import urllib.request
from collections.abc import Iterator, Sequence

from ..api.cache import CacheInfo
from ..api.outcome import EnumerationOutcome
from ..api.request import EnumerationRequest
from ..api.store import GraphInfo
from ..core.result import CliqueRecord
from ..errors import FormatError, JobError, ServiceError, StoreError
from ..uncertain.graph import UncertainGraph
from . import codec
from .jobs import JobState

__all__ = ["RemoteJob", "RemoteSession", "RemoteStore", "connect"]

#: Default per-request timeout.  Generous — enumeration requests can
#: legitimately run for a while; bound them server-side with
#: ``RunControls.time_budget_seconds`` rather than client socket timeouts.
DEFAULT_TIMEOUT_SECONDS = 300.0

#: Default timeout for cheap control-plane calls (health, stats, job
#: status polls, cancellation).  These answer from memory without running
#: an enumeration, so they must *not* inherit the generous data-plane
#: default — a dead server should fail a liveness probe in seconds.
DEFAULT_CONTROL_TIMEOUT_SECONDS = 10.0

#: Consecutive result-stream reconnects tolerated without the cursor
#: advancing before the client gives up.  The budget only burns once the
#: job has been observed past ``queued`` — a job parked in the server's
#: submit queue is waiting, not stalled.
_MAX_STALLED_RECONNECTS = 5

#: First delay before re-opening a result stream that did not advance;
#: doubles per consecutive idle reconnect, up to the cap.  Without this a
#: queued job's empty streams would burn the whole stall budget in
#: milliseconds (and hammer the server with reconnects while doing it).
_RECONNECT_BACKOFF_SECONDS = 0.05

#: Upper bound on the reconnect delay.
_RECONNECT_BACKOFF_CAP_SECONDS = 2.0


class _HttpClient:
    """Shared urllib transport: request building, error mapping, decoding.

    Every verb accepts a per-call ``timeout`` override; ``None`` (the
    default) falls back to the client-wide timeout the constructor set.
    """

    def __init__(self, base_url: str, timeout: float) -> None:
        self._base_url = base_url.rstrip("/")
        self._timeout = timeout

    @property
    def base_url(self) -> str:
        """The server's base URL (no trailing slash)."""
        return self._base_url

    def _get(self, path: str, *, timeout: float | None = None) -> dict:
        return self._call(
            urllib.request.Request(self._base_url + path, method="GET"),
            timeout=timeout,
        )

    def _post(
        self, path: str, envelope: dict, *, timeout: float | None = None
    ) -> dict:
        request = urllib.request.Request(
            self._base_url + path,
            data=codec.encode(envelope),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        return self._call(request, timeout=timeout)

    def _delete(self, path: str, *, timeout: float | None = None) -> dict:
        return self._call(
            urllib.request.Request(self._base_url + path, method="DELETE"),
            timeout=timeout,
        )

    def _call(
        self, request: urllib.request.Request, *, timeout: float | None = None
    ) -> dict:
        if timeout is None:
            timeout = self._timeout
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                body = response.read()
        except urllib.error.HTTPError as exc:
            raise self._error_from_response(exc) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach {self._base_url}: {exc.reason}"
            ) from exc
        except OSError as exc:
            raise ServiceError(f"transport failure: {exc}") from exc
        try:
            return codec.decode(body)
        except FormatError as exc:
            raise ServiceError(f"malformed server response: {exc}") from exc

    def _open_stream(self, path: str, *, timeout: float | None = None):
        """Open a streaming GET and return the live response object.

        The caller owns the response (and must close it); urllib decodes
        the chunked transfer encoding transparently, so iterating the
        response yields NDJSON lines as the server flushes them.
        """
        if timeout is None:
            timeout = self._timeout
        request = urllib.request.Request(self._base_url + path, method="GET")
        try:
            return urllib.request.urlopen(request, timeout=timeout)
        except urllib.error.HTTPError as exc:
            raise self._error_from_response(exc) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach {self._base_url}: {exc.reason}"
            ) from exc
        except OSError as exc:
            raise ServiceError(f"transport failure: {exc}") from exc

    def _get_text(self, path: str, *, timeout: float | None = None) -> str:
        """GET a plain-text resource (the Prometheus exposition format)."""
        if timeout is None:
            timeout = self._timeout
        request = urllib.request.Request(self._base_url + path, method="GET")
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise self._error_from_response(exc) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach {self._base_url}: {exc.reason}"
            ) from exc
        except OSError as exc:
            raise ServiceError(f"transport failure: {exc}") from exc

    # ------------------------------------------------------------------ #
    # Observability (shared by sessions and stores)
    # ------------------------------------------------------------------ #
    def metrics(self, *, timeout: float | None = None) -> dict:
        """The server's metrics snapshot (``GET /v1/metrics``).

        Returns the decoded registry snapshot — ``counters``/``gauges``
        flat series maps plus per-series ``histograms`` with bucket
        bounds, counts and derived p50/p99.  Control-plane timeout.
        """
        if timeout is None:
            timeout = DEFAULT_CONTROL_TIMEOUT_SECONDS
        return codec.metrics_from_wire(self._get("/v1/metrics", timeout=timeout))

    def metrics_text(self, *, timeout: float | None = None) -> str:
        """The Prometheus text form (``GET /v1/metrics?format=prometheus``)."""
        if timeout is None:
            timeout = DEFAULT_CONTROL_TIMEOUT_SECONDS
        return self._get_text("/v1/metrics?format=prometheus", timeout=timeout)

    @staticmethod
    def _error_from_response(exc: urllib.error.HTTPError) -> Exception:
        """Map an HTTP error to the exception the server meant to raise."""
        try:
            payload = codec.decode(exc.read())
            return codec.error_from_wire(payload)
        except FormatError:
            return ServiceError(f"server returned HTTP {exc.code}: {exc.reason}")


class RemoteJob:
    """A handle on one server-side asynchronous job.

    Obtained from :meth:`RemoteSession.submit` (fresh submission) or
    :meth:`RemoteStore.job` / :meth:`RemoteSession.job` (re-attach by id).
    The handle accumulates every record it streams, so after the stream is
    drained :meth:`outcome` reassembles the full
    :class:`~repro.api.outcome.EnumerationOutcome` — bit-identical to a
    local run, including the ``stop_reason`` provenance of a cancelled or
    budget-stopped run.
    """

    def __init__(self, client: _HttpClient, job_id: str) -> None:
        self._client = client
        self.id = job_id
        self._cursor = 0
        self._records: list[CliqueRecord] = []
        self._summary: EnumerationOutcome | None = None
        self._error: BaseException | None = None

    # ------------------------------------------------------------------ #
    # Control plane
    # ------------------------------------------------------------------ #
    def status(self, *, timeout: float | None = None) -> codec.JobStatus:
        """Poll the job's live status (state, progress counters, records)."""
        if timeout is None:
            timeout = DEFAULT_CONTROL_TIMEOUT_SECONDS
        return codec.job_status_from_wire(
            self._client._get(f"/v2/jobs/{self.id}", timeout=timeout)
        )

    def cancel(self, *, timeout: float | None = None) -> codec.JobStatus:
        """Request cancellation; returns the post-cancel status snapshot."""
        if timeout is None:
            timeout = DEFAULT_CONTROL_TIMEOUT_SECONDS
        return codec.job_status_from_wire(
            self._client._delete(f"/v2/jobs/{self.id}", timeout=timeout)
        )

    # ------------------------------------------------------------------ #
    # Result streaming
    # ------------------------------------------------------------------ #
    def iter_results(self) -> Iterator[CliqueRecord]:
        """Yield clique records live, as the server's producer emits them.

        Reconnects transparently on dropped connections: the resume
        cursor only advances past a chunk once it was fully received, so
        no record is lost or duplicated.  When the stream ends, a failed
        job's error is re-raised; a ``done``/``cancelled`` job returns
        normally (check :meth:`outcome` for the ``stop_reason``).

        Idle reconnects (the cursor did not advance) back off with a
        capped exponential delay, and only count against the stall budget
        once the job has been observed past ``queued`` — a job waiting in
        the server's submit queue produces nothing for as long as the
        queue ahead of it takes, which is patience, not a stall.
        """
        stalled = 0
        idle = 0
        observed_running = False
        while self._summary is None and self._error is None:
            before = self._cursor
            stream = self._client._open_stream(
                f"/v2/jobs/{self.id}/results?cursor={self._cursor}"
            )
            try:
                yield from self._consume(stream)
            except (OSError, http.client.HTTPException):
                pass  # dropped mid-chunk: reconnect at the same cursor
            finally:
                stream.close()
            if (
                self._cursor != before
                or self._summary is not None
                or self._error is not None
            ):
                stalled = 0
                idle = 0
                observed_running = True  # records flowed: it ran
                continue
            idle += 1
            if not observed_running:
                try:
                    observed_running = self.status().state != JobState.QUEUED
                except ServiceError:
                    # Can't ask — charge the budget rather than wait on a
                    # server that answers neither streams nor polls.
                    observed_running = True
            if observed_running:
                stalled += 1
                if stalled >= _MAX_STALLED_RECONNECTS:
                    raise ServiceError(
                        f"result stream of job {self.id} stalled at cursor "
                        f"{self._cursor} after {stalled} reconnects"
                    )
            time.sleep(
                min(
                    _RECONNECT_BACKOFF_CAP_SECONDS,
                    _RECONNECT_BACKOFF_SECONDS * (2 ** (idle - 1)),
                )
            )
        if self._error is not None:
            raise self._error

    def _consume(self, stream) -> Iterator[CliqueRecord]:
        """Process one connection's NDJSON lines until final chunk or drop."""
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                chunk = codec.job_chunk_from_wire(codec.decode(line))
            except FormatError as exc:
                raise ServiceError(f"malformed result chunk: {exc}") from exc
            if chunk.job != self.id:
                raise ServiceError(
                    f"result stream for job {self.id} delivered a chunk of "
                    f"job {chunk.job}"
                )
            if chunk.final:
                self._summary = chunk.summary
                self._error = chunk.error
                return
            self._records.extend(chunk.records)
            self._cursor = chunk.seq + 1
            yield from chunk.records

    def wait(self) -> EnumerationOutcome:
        """Drain the result stream and return the reassembled outcome.

        Blocks until the job is terminal; raises the job's error if it
        failed.  The remote blocking analog of ``Future.result()``.
        """
        for _ in self.iter_results():
            pass
        return self.outcome()

    def outcome(self) -> EnumerationOutcome:
        """The reassembled outcome of a fully streamed job.

        Only available once :meth:`iter_results` / :meth:`wait` consumed
        the final chunk; raises :class:`~repro.errors.JobError` before
        that, and the job's own error if it failed.
        """
        if self._error is not None:
            raise self._error
        if self._summary is None:
            raise JobError(
                f"job {self.id} has not been streamed to completion; call "
                f"wait() or drain iter_results() first"
            )
        outcome = self._summary
        outcome.records = list(self._records)
        return outcome

    def __repr__(self) -> str:
        return f"RemoteJob(id={self.id!r}, base_url={self._client.base_url!r})"


class RemoteSession(_HttpClient):
    """A mining session served by a remote ``repro-mule serve`` process.

    Parameters
    ----------
    base_url:
        The server's base URL, e.g. ``"http://127.0.0.1:8765"``.
    graph:
        Optional graph reference (registered name or fingerprint).  When
        omitted the session speaks the v1 surface against the server's
        default graph; when given it speaks v2 against that graph.
    timeout:
        Socket timeout per request, in seconds.
    """

    def __init__(
        self,
        base_url: str,
        *,
        graph: str | None = None,
        timeout: float = DEFAULT_TIMEOUT_SECONDS,
    ) -> None:
        super().__init__(base_url, timeout)
        self._graph_ref = graph

    @property
    def graph_ref(self) -> str | None:
        """The graph reference this session targets (``None`` = default)."""
        return self._graph_ref

    # ------------------------------------------------------------------ #
    # The MiningSession-shaped surface
    # ------------------------------------------------------------------ #
    def enumerate(self, request: EnumerationRequest) -> EnumerationOutcome:
        """Run one request remotely; mirrors :meth:`MiningSession.enumerate`."""
        if self._graph_ref is None:
            payload = self._post("/v1/enumerate", codec.request_to_wire(request))
        else:
            payload = self._post(
                f"/v2/graphs/{self._graph_ref}/enumerate",
                codec.ref_request_to_wire(request, graph=self._graph_ref),
            )
        return codec.outcome_from_wire(payload)

    def sweep(
        self,
        alphas: Sequence[float],
        *,
        algorithm: str = "mule",
        **options: object,
    ) -> list[EnumerationOutcome]:
        """Run one request per α remotely over a single server compilation.

        Mirrors :meth:`MiningSession.sweep`: the α points travel as one
        request, so the server pre-plans a shared derivation base and the
        whole sweep compiles exactly once (observable in :meth:`stats` /
        :meth:`cache_info`).
        """
        alphas = list(alphas)
        if not alphas:
            return []
        base = EnumerationRequest(algorithm=algorithm, alpha=alphas[0], **options)
        if self._graph_ref is None:
            payload = self._post("/v1/sweep", codec.sweep_to_wire(base, alphas))
        else:
            payload = self._post(
                f"/v2/graphs/{self._graph_ref}/sweep",
                codec.ref_sweep_to_wire(base, alphas, graph=self._graph_ref),
            )
        return codec.outcomes_from_wire(payload)

    def submit(
        self,
        request: EnumerationRequest,
        *,
        page_size: int | None = None,
        timeout: float | None = None,
    ) -> RemoteJob:
        """Submit one request asynchronously; returns immediately.

        The async sibling of :meth:`enumerate`: the server queues the
        enumeration as a job and answers with its id without running
        anything first.  ``page_size`` overrides the server's result-page
        granularity (records per streamed chunk).
        """
        if timeout is None:
            timeout = DEFAULT_CONTROL_TIMEOUT_SECONDS
        payload = self._post(
            "/v2/jobs",
            codec.job_request_to_wire(
                request, graph=self._graph_ref, page_size=page_size
            ),
            timeout=timeout,
        )
        status = codec.job_status_from_wire(payload)
        return RemoteJob(self, status.id)

    def job(self, job_id: str) -> RemoteJob:
        """Re-attach to a previously submitted job by id."""
        return RemoteJob(self, job_id)

    def jobs(self, *, timeout: float | None = None) -> list[codec.JobStatus]:
        """List every job registered on the server."""
        if timeout is None:
            timeout = DEFAULT_CONTROL_TIMEOUT_SECONDS
        return codec.job_list_from_wire(self._get("/v2/jobs", timeout=timeout))

    def cache_info(self) -> CacheInfo:
        """The server-side compiled-graph cache counters.

        Mirrors :meth:`MiningSession.cache_info`.  A session bound to a
        graph reference returns that graph's **per-graph** counters, so
        "a remote sweep of graph X compiled exactly once" holds even while
        other graphs are being compiled on the same server; an unbound
        (v1) session returns the global counters, as it always has.
        """
        stats = self.stats()
        if self._graph_ref is None:
            return self._cache_info_from(stats.get("cache"))
        info = self.graph_info()
        graphs = stats.get("graphs")
        if not isinstance(graphs, dict) or info.fingerprint not in graphs:
            raise ServiceError(
                f"stats payload has no per-graph counters for "
                f"{info.fingerprint[:12]}…"
            )
        return self._cache_info_from(graphs[info.fingerprint].get("cache"))

    @staticmethod
    def _cache_info_from(cache: object) -> CacheInfo:
        if not isinstance(cache, dict):
            raise ServiceError(f"malformed stats payload: cache={cache!r}")
        try:
            return CacheInfo(**cache)
        except TypeError as exc:
            raise ServiceError(f"malformed cache counters: {cache!r}") from exc

    # ------------------------------------------------------------------ #
    # Service introspection
    # ------------------------------------------------------------------ #
    def health(self, *, timeout: float | None = None) -> dict:
        """The server's ``/v1/health`` payload (raises if unreachable).

        Control-plane call: defaults to the snappy
        :data:`DEFAULT_CONTROL_TIMEOUT_SECONDS`, not the session-wide
        data-plane timeout — a liveness probe must fail fast.
        """
        if timeout is None:
            timeout = DEFAULT_CONTROL_TIMEOUT_SECONDS
        return self._get("/v1/health", timeout=timeout)

    def stats(self, *, timeout: float | None = None) -> dict:
        """The server's ``/v1/stats`` payload (control-plane timeout)."""
        if timeout is None:
            timeout = DEFAULT_CONTROL_TIMEOUT_SECONDS
        return self._get("/v1/stats", timeout=timeout)

    def graph_info(self) -> GraphInfo:
        """The served graph's :class:`GraphInfo` (v2; any session may ask)."""
        ref = self._graph_ref
        if ref is None:
            health = self.health()
            graph = health.get("graph")
            if not isinstance(graph, dict):
                raise ServiceError("server has no default graph")
            ref = graph["fingerprint"]
        return codec.graph_info_from_wire(self._get(f"/v2/graphs/{ref}"))

    def __repr__(self) -> str:
        return (
            f"RemoteSession(base_url={self._base_url!r}, "
            f"graph={self._graph_ref!r})"
        )


class RemoteStore(_HttpClient):
    """The client mirror of :class:`~repro.api.store.GraphStore`.

    Usually constructed via :func:`connect`.  Every method round-trips
    through the ``/v2/graphs`` resource endpoints; graph references are
    registered names or fingerprints (unambiguous 8+-character prefixes
    accepted), exactly as on the server.
    """

    def __init__(
        self, base_url: str, *, timeout: float = DEFAULT_TIMEOUT_SECONDS
    ) -> None:
        super().__init__(base_url, timeout)

    # ------------------------------------------------------------------ #
    # The GraphStore-shaped surface
    # ------------------------------------------------------------------ #
    def add(self, graph: UncertainGraph, *, name: str | None = None) -> GraphInfo:
        """Upload a graph (lossless edge-set transfer) and register it."""
        upload = codec.GraphUpload(graph=graph, name=name)
        return codec.graph_info_from_wire(
            self._post("/v2/graphs", codec.upload_to_wire(upload))
        )

    def add_dataset(
        self,
        dataset: str,
        *,
        scale: float | None = None,
        seed: int | None = None,
        name: str | None = None,
    ) -> GraphInfo:
        """Have the *server* build a named Table 1 analog and register it.

        Only the dataset name and knobs travel — the graph is generated
        server-side, so registering ``dblp10`` does not ship two million
        edges over the wire.
        """
        upload = codec.GraphUpload(dataset=dataset, scale=scale, seed=seed, name=name)
        return codec.graph_info_from_wire(
            self._post("/v2/graphs", codec.upload_to_wire(upload))
        )

    def get(self, ref: str) -> GraphInfo:
        """Return one stored graph's info (404 → ``GraphNotFoundError``)."""
        return codec.graph_info_from_wire(self._get(f"/v2/graphs/{ref}"))

    def list(self) -> list[GraphInfo]:
        """Return every graph resident on the server."""
        return codec.graph_list_from_wire(self._get("/v2/graphs"))

    def remove(self, ref: str) -> GraphInfo:
        """Unregister a graph server-side; returns its final info."""
        return codec.graph_info_from_wire(self._delete(f"/v2/graphs/{ref}"))

    def session(self, ref: str | None = None) -> RemoteSession:
        """Open a :class:`RemoteSession` on the referenced graph.

        ``None`` returns a default-graph (v1) session — the drop-in
        equivalent of ``GraphStore.session()``.
        """
        return RemoteSession(self._base_url, graph=ref, timeout=self._timeout)

    def job(self, job_id: str) -> RemoteJob:
        """Attach to a server-side job by id (``RemoteJob`` handle)."""
        return RemoteJob(self, job_id)

    def jobs(self, *, timeout: float | None = None) -> list[codec.JobStatus]:
        """List every job registered on the server."""
        if timeout is None:
            timeout = DEFAULT_CONTROL_TIMEOUT_SECONDS
        return codec.job_list_from_wire(self._get("/v2/jobs", timeout=timeout))

    def __contains__(self, ref: object) -> bool:
        # StoreError (not just GraphNotFoundError): an ambiguous prefix
        # answers False here exactly as GraphStore.__contains__ does —
        # transport failures still propagate as ServiceError.
        if not isinstance(ref, str):
            return False
        try:
            self.get(ref)
        except StoreError:
            return False
        return True

    # ------------------------------------------------------------------ #
    # Service introspection
    # ------------------------------------------------------------------ #
    def health(self, *, timeout: float | None = None) -> dict:
        """The server's ``/v1/health`` payload (control-plane timeout)."""
        if timeout is None:
            timeout = DEFAULT_CONTROL_TIMEOUT_SECONDS
        return self._get("/v1/health", timeout=timeout)

    def stats(self, *, timeout: float | None = None) -> dict:
        """The server's ``/v1/stats`` payload (control-plane timeout)."""
        if timeout is None:
            timeout = DEFAULT_CONTROL_TIMEOUT_SECONDS
        return self._get("/v1/stats", timeout=timeout)

    def __repr__(self) -> str:
        return f"RemoteStore(base_url={self._base_url!r})"


def connect(
    url: str, *, timeout: float = DEFAULT_TIMEOUT_SECONDS
) -> RemoteStore:
    """Open a :class:`RemoteStore` on a running ``repro-mule serve``.

    The one-liner that makes remote hosting read like local code::

        session = connect("http://host:8765").session("ppi")
    """
    return RemoteStore(url, timeout=timeout)
