"""The remote client — a drop-in mirror of :class:`MiningSession`.

:class:`RemoteSession` speaks the wire protocol of
:class:`~repro.service.server.MiningServer` with nothing beyond
``urllib`` and exposes the session API's shape — ``enumerate(request)``,
``sweep(alphas, ...)``, ``cache_info()`` — so callers swap a local session
for a remote one by changing a constructor::

    session = MiningSession(graph)              # local
    session = RemoteSession("http://host:8765") # remote, same call sites

Outcomes decode to real :class:`~repro.api.outcome.EnumerationOutcome`
objects: clique sets, probabilities, counters and stop provenance are
identical to a local run of the same request (the remote-parity suite and
the throughput benchmark assert this bit-for-bit).

Error behaviour: application-level failures re-raise the server-side
exception type (``except ParameterError`` works unchanged); transport and
protocol failures raise :class:`~repro.errors.ServiceError`.
"""

from __future__ import annotations

import urllib.error
import urllib.request
from collections.abc import Sequence

from ..api.cache import CacheInfo
from ..api.outcome import EnumerationOutcome
from ..api.request import EnumerationRequest
from ..errors import FormatError, ServiceError
from . import codec

__all__ = ["RemoteSession"]

#: Default per-request timeout.  Generous — enumeration requests can
#: legitimately run for a while; bound them server-side with
#: ``RunControls.time_budget_seconds`` rather than client socket timeouts.
DEFAULT_TIMEOUT_SECONDS = 300.0


class RemoteSession:
    """A mining session served by a remote ``repro-mule serve`` process.

    Parameters
    ----------
    base_url:
        The server's base URL, e.g. ``"http://127.0.0.1:8765"``.
    timeout:
        Socket timeout per request, in seconds.
    """

    def __init__(
        self, base_url: str, *, timeout: float = DEFAULT_TIMEOUT_SECONDS
    ) -> None:
        self._base_url = base_url.rstrip("/")
        self._timeout = timeout

    @property
    def base_url(self) -> str:
        """The server's base URL (no trailing slash)."""
        return self._base_url

    # ------------------------------------------------------------------ #
    # The MiningSession-shaped surface
    # ------------------------------------------------------------------ #
    def enumerate(self, request: EnumerationRequest) -> EnumerationOutcome:
        """Run one request remotely; mirrors :meth:`MiningSession.enumerate`."""
        payload = self._post("/v1/enumerate", codec.request_to_wire(request))
        return codec.outcome_from_wire(payload)

    def sweep(
        self,
        alphas: Sequence[float],
        *,
        algorithm: str = "mule",
        **options: object,
    ) -> list[EnumerationOutcome]:
        """Run one request per α remotely over a single server compilation.

        Mirrors :meth:`MiningSession.sweep`: the α points travel as one
        ``sweep-request``, so the server pre-plans a shared derivation base
        and the whole sweep compiles exactly once (observable in
        :meth:`stats` / :meth:`cache_info`).
        """
        alphas = list(alphas)
        if not alphas:
            return []
        base = EnumerationRequest(algorithm=algorithm, alpha=alphas[0], **options)
        payload = self._post("/v1/sweep", codec.sweep_to_wire(base, alphas))
        return codec.outcomes_from_wire(payload)

    def cache_info(self) -> CacheInfo:
        """The server-side compiled-graph cache counters.

        Mirrors :meth:`MiningSession.cache_info`, which is what lets the
        acceptance tests assert "a remote sweep compiled exactly once" the
        same way the local ones do.
        """
        cache = self.stats().get("cache")
        if not isinstance(cache, dict):
            raise ServiceError(f"malformed stats payload: cache={cache!r}")
        try:
            return CacheInfo(**cache)
        except TypeError as exc:
            raise ServiceError(f"malformed cache counters: {cache!r}") from exc

    # ------------------------------------------------------------------ #
    # Service introspection
    # ------------------------------------------------------------------ #
    def health(self) -> dict:
        """The server's ``/v1/health`` payload (raises if unreachable)."""
        return self._get("/v1/health")

    def stats(self) -> dict:
        """The server's ``/v1/stats`` payload."""
        return self._get("/v1/stats")

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _get(self, path: str) -> dict:
        return self._call(
            urllib.request.Request(self._base_url + path, method="GET")
        )

    def _post(self, path: str, envelope: dict) -> dict:
        request = urllib.request.Request(
            self._base_url + path,
            data=codec.encode(envelope),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        return self._call(request)

    def _call(self, request: urllib.request.Request) -> dict:
        try:
            with urllib.request.urlopen(request, timeout=self._timeout) as response:
                body = response.read()
        except urllib.error.HTTPError as exc:
            raise self._error_from_response(exc) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach {self._base_url}: {exc.reason}"
            ) from exc
        except OSError as exc:
            raise ServiceError(f"transport failure: {exc}") from exc
        try:
            return codec.decode(body)
        except FormatError as exc:
            raise ServiceError(f"malformed server response: {exc}") from exc

    @staticmethod
    def _error_from_response(exc: urllib.error.HTTPError) -> Exception:
        """Map an HTTP error to the exception the server meant to raise."""
        try:
            payload = codec.decode(exc.read())
            return codec.error_from_wire(payload)
        except FormatError:
            return ServiceError(f"server returned HTTP {exc.code}: {exc.reason}")

    def __repr__(self) -> str:
        return f"RemoteSession(base_url={self._base_url!r})"
