"""The remote clients — drop-in mirrors of the local session API.

:class:`RemoteStore` mirrors :class:`~repro.api.store.GraphStore` over the
wire (nothing beyond ``urllib``): register graphs or server-built dataset
analogs, list/get/remove them, and open a :class:`RemoteSession` on any of
them by name or fingerprint.  Local and remote code become
interchangeable::

    store = GraphStore();  store.add_dataset("ppi", scale=0.05)   # local
    store = connect("http://host:8765")                           # remote
    session = store.session("ppi")          # same call sites either way

:class:`RemoteSession` keeps its original single-graph shape —
``enumerate(request)``, ``sweep(alphas, ...)``, ``cache_info()`` — so
callers swap a local :class:`~repro.api.session.MiningSession` for a
remote one by changing a constructor.  A session without a graph reference
speaks the frozen ``/v1`` surface against the server's default graph; one
opened via ``RemoteStore.session("name")`` speaks ``/v2`` against exactly
that graph, and its ``cache_info()`` returns that graph's *per-graph*
counters — which is what lets "this graph compiled exactly once" be
asserted per graph on a busy multi-graph server.

Outcomes decode to real :class:`~repro.api.outcome.EnumerationOutcome`
objects: clique sets, probabilities, counters and stop provenance are
identical to a local run of the same request (the remote-parity suites and
the throughput benchmark assert this bit-for-bit).

Error behaviour: application-level failures re-raise the server-side
exception type (``except ParameterError`` works unchanged, as does
``except GraphNotFoundError`` for dangling references); transport and
protocol failures raise :class:`~repro.errors.ServiceError`.
"""

from __future__ import annotations

import urllib.error
import urllib.request
from collections.abc import Sequence

from ..api.cache import CacheInfo
from ..api.outcome import EnumerationOutcome
from ..api.request import EnumerationRequest
from ..api.store import GraphInfo
from ..errors import FormatError, ServiceError, StoreError
from ..uncertain.graph import UncertainGraph
from . import codec

__all__ = ["RemoteSession", "RemoteStore", "connect"]

#: Default per-request timeout.  Generous — enumeration requests can
#: legitimately run for a while; bound them server-side with
#: ``RunControls.time_budget_seconds`` rather than client socket timeouts.
DEFAULT_TIMEOUT_SECONDS = 300.0


class _HttpClient:
    """Shared urllib transport: request building, error mapping, decoding."""

    def __init__(self, base_url: str, timeout: float) -> None:
        self._base_url = base_url.rstrip("/")
        self._timeout = timeout

    @property
    def base_url(self) -> str:
        """The server's base URL (no trailing slash)."""
        return self._base_url

    def _get(self, path: str) -> dict:
        return self._call(
            urllib.request.Request(self._base_url + path, method="GET")
        )

    def _post(self, path: str, envelope: dict) -> dict:
        request = urllib.request.Request(
            self._base_url + path,
            data=codec.encode(envelope),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        return self._call(request)

    def _delete(self, path: str) -> dict:
        return self._call(
            urllib.request.Request(self._base_url + path, method="DELETE")
        )

    def _call(self, request: urllib.request.Request) -> dict:
        try:
            with urllib.request.urlopen(request, timeout=self._timeout) as response:
                body = response.read()
        except urllib.error.HTTPError as exc:
            raise self._error_from_response(exc) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach {self._base_url}: {exc.reason}"
            ) from exc
        except OSError as exc:
            raise ServiceError(f"transport failure: {exc}") from exc
        try:
            return codec.decode(body)
        except FormatError as exc:
            raise ServiceError(f"malformed server response: {exc}") from exc

    @staticmethod
    def _error_from_response(exc: urllib.error.HTTPError) -> Exception:
        """Map an HTTP error to the exception the server meant to raise."""
        try:
            payload = codec.decode(exc.read())
            return codec.error_from_wire(payload)
        except FormatError:
            return ServiceError(f"server returned HTTP {exc.code}: {exc.reason}")


class RemoteSession(_HttpClient):
    """A mining session served by a remote ``repro-mule serve`` process.

    Parameters
    ----------
    base_url:
        The server's base URL, e.g. ``"http://127.0.0.1:8765"``.
    graph:
        Optional graph reference (registered name or fingerprint).  When
        omitted the session speaks the v1 surface against the server's
        default graph; when given it speaks v2 against that graph.
    timeout:
        Socket timeout per request, in seconds.
    """

    def __init__(
        self,
        base_url: str,
        *,
        graph: str | None = None,
        timeout: float = DEFAULT_TIMEOUT_SECONDS,
    ) -> None:
        super().__init__(base_url, timeout)
        self._graph_ref = graph

    @property
    def graph_ref(self) -> str | None:
        """The graph reference this session targets (``None`` = default)."""
        return self._graph_ref

    # ------------------------------------------------------------------ #
    # The MiningSession-shaped surface
    # ------------------------------------------------------------------ #
    def enumerate(self, request: EnumerationRequest) -> EnumerationOutcome:
        """Run one request remotely; mirrors :meth:`MiningSession.enumerate`."""
        if self._graph_ref is None:
            payload = self._post("/v1/enumerate", codec.request_to_wire(request))
        else:
            payload = self._post(
                f"/v2/graphs/{self._graph_ref}/enumerate",
                codec.ref_request_to_wire(request, graph=self._graph_ref),
            )
        return codec.outcome_from_wire(payload)

    def sweep(
        self,
        alphas: Sequence[float],
        *,
        algorithm: str = "mule",
        **options: object,
    ) -> list[EnumerationOutcome]:
        """Run one request per α remotely over a single server compilation.

        Mirrors :meth:`MiningSession.sweep`: the α points travel as one
        request, so the server pre-plans a shared derivation base and the
        whole sweep compiles exactly once (observable in :meth:`stats` /
        :meth:`cache_info`).
        """
        alphas = list(alphas)
        if not alphas:
            return []
        base = EnumerationRequest(algorithm=algorithm, alpha=alphas[0], **options)
        if self._graph_ref is None:
            payload = self._post("/v1/sweep", codec.sweep_to_wire(base, alphas))
        else:
            payload = self._post(
                f"/v2/graphs/{self._graph_ref}/sweep",
                codec.ref_sweep_to_wire(base, alphas, graph=self._graph_ref),
            )
        return codec.outcomes_from_wire(payload)

    def cache_info(self) -> CacheInfo:
        """The server-side compiled-graph cache counters.

        Mirrors :meth:`MiningSession.cache_info`.  A session bound to a
        graph reference returns that graph's **per-graph** counters, so
        "a remote sweep of graph X compiled exactly once" holds even while
        other graphs are being compiled on the same server; an unbound
        (v1) session returns the global counters, as it always has.
        """
        stats = self.stats()
        if self._graph_ref is None:
            return self._cache_info_from(stats.get("cache"))
        info = self.graph_info()
        graphs = stats.get("graphs")
        if not isinstance(graphs, dict) or info.fingerprint not in graphs:
            raise ServiceError(
                f"stats payload has no per-graph counters for "
                f"{info.fingerprint[:12]}…"
            )
        return self._cache_info_from(graphs[info.fingerprint].get("cache"))

    @staticmethod
    def _cache_info_from(cache: object) -> CacheInfo:
        if not isinstance(cache, dict):
            raise ServiceError(f"malformed stats payload: cache={cache!r}")
        try:
            return CacheInfo(**cache)
        except TypeError as exc:
            raise ServiceError(f"malformed cache counters: {cache!r}") from exc

    # ------------------------------------------------------------------ #
    # Service introspection
    # ------------------------------------------------------------------ #
    def health(self) -> dict:
        """The server's ``/v1/health`` payload (raises if unreachable)."""
        return self._get("/v1/health")

    def stats(self) -> dict:
        """The server's ``/v1/stats`` payload."""
        return self._get("/v1/stats")

    def graph_info(self) -> GraphInfo:
        """The served graph's :class:`GraphInfo` (v2; any session may ask)."""
        ref = self._graph_ref
        if ref is None:
            health = self.health()
            graph = health.get("graph")
            if not isinstance(graph, dict):
                raise ServiceError("server has no default graph")
            ref = graph["fingerprint"]
        return codec.graph_info_from_wire(self._get(f"/v2/graphs/{ref}"))

    def __repr__(self) -> str:
        return (
            f"RemoteSession(base_url={self._base_url!r}, "
            f"graph={self._graph_ref!r})"
        )


class RemoteStore(_HttpClient):
    """The client mirror of :class:`~repro.api.store.GraphStore`.

    Usually constructed via :func:`connect`.  Every method round-trips
    through the ``/v2/graphs`` resource endpoints; graph references are
    registered names or fingerprints (unambiguous 8+-character prefixes
    accepted), exactly as on the server.
    """

    def __init__(
        self, base_url: str, *, timeout: float = DEFAULT_TIMEOUT_SECONDS
    ) -> None:
        super().__init__(base_url, timeout)

    # ------------------------------------------------------------------ #
    # The GraphStore-shaped surface
    # ------------------------------------------------------------------ #
    def add(self, graph: UncertainGraph, *, name: str | None = None) -> GraphInfo:
        """Upload a graph (lossless edge-set transfer) and register it."""
        upload = codec.GraphUpload(graph=graph, name=name)
        return codec.graph_info_from_wire(
            self._post("/v2/graphs", codec.upload_to_wire(upload))
        )

    def add_dataset(
        self,
        dataset: str,
        *,
        scale: float | None = None,
        seed: int | None = None,
        name: str | None = None,
    ) -> GraphInfo:
        """Have the *server* build a named Table 1 analog and register it.

        Only the dataset name and knobs travel — the graph is generated
        server-side, so registering ``dblp10`` does not ship two million
        edges over the wire.
        """
        upload = codec.GraphUpload(dataset=dataset, scale=scale, seed=seed, name=name)
        return codec.graph_info_from_wire(
            self._post("/v2/graphs", codec.upload_to_wire(upload))
        )

    def get(self, ref: str) -> GraphInfo:
        """Return one stored graph's info (404 → ``GraphNotFoundError``)."""
        return codec.graph_info_from_wire(self._get(f"/v2/graphs/{ref}"))

    def list(self) -> list[GraphInfo]:
        """Return every graph resident on the server."""
        return codec.graph_list_from_wire(self._get("/v2/graphs"))

    def remove(self, ref: str) -> GraphInfo:
        """Unregister a graph server-side; returns its final info."""
        return codec.graph_info_from_wire(self._delete(f"/v2/graphs/{ref}"))

    def session(self, ref: str | None = None) -> RemoteSession:
        """Open a :class:`RemoteSession` on the referenced graph.

        ``None`` returns a default-graph (v1) session — the drop-in
        equivalent of ``GraphStore.session()``.
        """
        return RemoteSession(self._base_url, graph=ref, timeout=self._timeout)

    def __contains__(self, ref: object) -> bool:
        # StoreError (not just GraphNotFoundError): an ambiguous prefix
        # answers False here exactly as GraphStore.__contains__ does —
        # transport failures still propagate as ServiceError.
        if not isinstance(ref, str):
            return False
        try:
            self.get(ref)
        except StoreError:
            return False
        return True

    # ------------------------------------------------------------------ #
    # Service introspection
    # ------------------------------------------------------------------ #
    def health(self) -> dict:
        """The server's ``/v1/health`` payload."""
        return self._get("/v1/health")

    def stats(self) -> dict:
        """The server's ``/v1/stats`` payload."""
        return self._get("/v1/stats")

    def __repr__(self) -> str:
        return f"RemoteStore(base_url={self._base_url!r})"


def connect(
    url: str, *, timeout: float = DEFAULT_TIMEOUT_SECONDS
) -> RemoteStore:
    """Open a :class:`RemoteStore` on a running ``repro-mule serve``.

    The one-liner that makes remote hosting read like local code::

        session = connect("http://host:8765").session("ppi")
    """
    return RemoteStore(url, timeout=timeout)
