"""The wire codec — lossless JSON round-trips for the session vocabulary.

Every payload the service layer moves across a process boundary is encoded
here: :class:`~repro.api.request.EnumerationRequest`,
:class:`~repro.api.outcome.EnumerationOutcome`, the
:class:`~repro.core.result.SearchStatistics` /
:class:`~repro.core.engine.controls.RunReport` counters,
:class:`~repro.core.result.CliqueRecord` lists, and the service-only
envelopes (sweep requests, outcome lists, errors).

Design rules — these are the compatibility contract the conformance corpus
(``tests/service/fixtures``) pins down:

* **Envelopes.**  Every encoded object is a JSON object carrying
  ``"schema"`` (the integer :data:`SCHEMA_VERSION`) and ``"kind"`` (the
  type tag :func:`from_wire` dispatches on).  Nested objects are full
  envelopes too, so any payload fragment is self-describing.
* **Strictness.**  Decoding rejects unknown keys, missing keys, wrong JSON
  types and unsupported schema versions with
  :class:`~repro.errors.FormatError`.  Domain validation (α out of range,
  inconsistent request fields) is delegated to the constructors, so wire
  decoding raises exactly the exception types local construction raises.
* **Determinism.**  :func:`encode` is canonical — sorted keys, compact
  separators, ASCII, no NaN/Infinity, one trailing newline — so equal
  objects always encode to equal bytes (what makes golden-fixture diffs
  meaningful).
* **Losslessness.**  Floats are emitted via ``repr`` (shortest round-trip,
  exact since Python 3.1) and vertex labels are restricted to the
  JSON-faithful types ``int`` / ``float`` / ``str``; anything else is
  rejected at encode time rather than silently coerced.

>>> from repro.api import EnumerationRequest
>>> request = EnumerationRequest(algorithm="mule", alpha=0.5)
>>> from_wire(to_wire(request)) == request
True
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Mapping, Sequence

from typing import Any, NamedTuple

from ..api.outcome import EnumerationOutcome
from ..api.request import EnumerationRequest
from ..api.store import GraphInfo
from ..core.engine.controls import RunControls, RunReport, StopReason
from ..core.result import CliqueRecord, SearchStatistics
from .. import errors as _errors
from ..errors import FormatError, ReproError
from ..uncertain.graph import UncertainGraph

__all__ = [
    "SCHEMA_VERSION",
    "SCHEMA_VERSION_V2",
    "SUPPORTED_SCHEMA_VERSIONS",
    "encode",
    "decode",
    "to_wire",
    "from_wire",
    "request_to_wire",
    "request_from_wire",
    "outcome_to_wire",
    "outcome_from_wire",
    "controls_to_wire",
    "controls_from_wire",
    "report_to_wire",
    "report_from_wire",
    "statistics_to_wire",
    "statistics_from_wire",
    "record_to_wire",
    "record_from_wire",
    "records_to_wire",
    "records_from_wire",
    "sweep_to_wire",
    "sweep_from_wire",
    "error_to_wire",
    "error_from_wire",
    "graph_to_wire",
    "graph_from_wire",
    "graph_info_to_wire",
    "graph_info_from_wire",
    "graph_list_to_wire",
    "graph_list_from_wire",
    "GraphUpload",
    "upload_to_wire",
    "upload_from_wire",
    "ref_request_to_wire",
    "ref_request_from_wire",
    "ref_sweep_to_wire",
    "ref_sweep_from_wire",
    "JOB_STATES",
    "JobStatus",
    "JobChunk",
    "job_request_to_wire",
    "job_request_from_wire",
    "job_status_to_wire",
    "job_status_from_wire",
    "job_summary_to_wire",
    "job_summary_from_wire",
    "job_chunk_to_wire",
    "job_chunk_from_wire",
    "job_list_to_wire",
    "job_list_from_wire",
    "metrics_to_wire",
    "metrics_from_wire",
]

#: Version of the original (v1) envelope generation.  Kinds introduced in
#: v1 keep stamping this version — their shape is frozen; see the
#: versioning policy in ``docs/service.md``.
SCHEMA_VERSION = 1

#: Version of the resource-model envelope generation (graphs as first-class
#: references).  Kinds introduced here stamp this version.
SCHEMA_VERSION_V2 = 2

#: Every version this codec decodes.  v2 is additive: v1 payloads decode
#: unchanged (the conformance corpus pins this), and a v1 kind arriving
#: with ``schema: 2`` is accepted too — same shape, newer speaker.
SUPPORTED_SCHEMA_VERSIONS = (SCHEMA_VERSION, SCHEMA_VERSION_V2)

_STOP_REASONS = (
    StopReason.COMPLETED,
    StopReason.MAX_CLIQUES,
    StopReason.TIME_BUDGET,
    StopReason.CANCELLED,
)

#: Wire vocabulary for job lifecycle states.  This is the codec's own
#: literal so the wire contract cannot drift silently when the scheduler
#: vocabulary changes — ``tests/service/test_jobs.py`` asserts it matches
#: :class:`repro.service.jobs.JobState` exactly.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")


# ---------------------------------------------------------------------- #
# Canonical bytes
# ---------------------------------------------------------------------- #
def encode(payload: Mapping[str, Any]) -> bytes:
    """Serialise a wire payload to canonical JSON bytes.

    Equal payloads always produce equal bytes: keys are sorted, separators
    compact, output pure ASCII with a single trailing newline.  NaN and
    infinities are rejected (they are not JSON).
    """
    try:
        text = json.dumps(
            payload,
            sort_keys=True,
            separators=(",", ":"),
            ensure_ascii=True,
            allow_nan=False,
        )
    except (TypeError, ValueError) as exc:
        raise FormatError(f"payload is not wire-encodable: {exc}") from exc
    return text.encode("ascii") + b"\n"


def decode(data: bytes | str) -> dict[str, Any]:
    """Parse wire bytes into a payload dict (the inverse of :func:`encode`)."""
    if isinstance(data, bytes):
        try:
            data = data.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise FormatError(f"payload is not valid UTF-8: {exc}") from exc
    try:
        payload = json.loads(data)
    except json.JSONDecodeError as exc:
        raise FormatError(f"payload is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise FormatError(
            f"wire payload must be a JSON object, got {type(payload).__name__}"
        )
    return payload


# ---------------------------------------------------------------------- #
# Envelope plumbing
# ---------------------------------------------------------------------- #
def _envelope(
    kind: str, fields: dict[str, Any], *, version: int = SCHEMA_VERSION
) -> dict[str, Any]:
    return {"schema": version, "kind": kind, **fields}


def _open_envelope(
    payload: object,
    kind: str,
    keys: frozenset[str],
    *,
    min_version: int = SCHEMA_VERSION,
) -> dict[str, Any]:
    """Validate schema/kind and the exact key set of an envelope.

    ``min_version`` is the version the kind was introduced in: a v2-only
    kind arriving stamped ``schema: 1`` is a lie about its provenance and
    is rejected, while v1 kinds decode under any supported version.
    """
    if not isinstance(payload, dict):
        raise FormatError(
            f"{kind} payload must be a JSON object, got {type(payload).__name__}"
        )
    version = payload.get("schema")
    if version not in SUPPORTED_SCHEMA_VERSIONS or version < min_version:
        supported = [v for v in SUPPORTED_SCHEMA_VERSIONS if v >= min_version]
        raise FormatError(
            f"unsupported schema version {version!r} for kind {kind!r} "
            f"(this codec speaks versions {supported})"
        )
    actual_kind = payload.get("kind")
    if actual_kind != kind:
        raise FormatError(f"expected a {kind!r} payload, got kind={actual_kind!r}")
    expected = keys | {"schema", "kind"}
    unknown = set(payload) - expected
    if unknown:
        raise FormatError(f"{kind}: unknown keys {sorted(unknown)}")
    missing = expected - set(payload)
    if missing:
        raise FormatError(f"{kind}: missing keys {sorted(missing)}")
    return payload


def _field(
    payload: dict[str, Any],
    kind: str,
    key: str,
    types: type[Any] | tuple[type[Any], ...],
    *,
    optional: bool = False,
) -> Any:
    value = payload[key]
    if value is None:
        if optional:
            return None
        raise FormatError(f"{kind}.{key} must not be null")
    # bool is an int subclass; never accept it where a number is expected.
    if isinstance(value, bool) and bool not in (
        types if isinstance(types, tuple) else (types,)
    ):
        raise FormatError(f"{kind}.{key} must not be a boolean")
    if not isinstance(value, types):
        names = (
            "/".join(t.__name__ for t in types)
            if isinstance(types, tuple)
            else types.__name__
        )
        raise FormatError(
            f"{kind}.{key} must be {names}, got {type(value).__name__}"
        )
    return value


def _number(
    payload: dict[str, Any], kind: str, key: str, *, optional: bool = False
) -> float | None:
    value = _field(payload, kind, key, (int, float), optional=optional)
    return None if value is None else float(value)


# ---------------------------------------------------------------------- #
# Vertices
# ---------------------------------------------------------------------- #
def _vertex_to_wire(vertex: object) -> int | float | str:
    if isinstance(vertex, bool) or not isinstance(vertex, (int, float, str)):
        raise FormatError(
            f"vertex label {vertex!r} is not wire-encodable (labels must be "
            f"int, float or str)"
        )
    return vertex


def _vertex_from_wire(value: object, kind: str) -> int | float | str:
    if isinstance(value, bool) or not isinstance(value, (int, float, str)):
        raise FormatError(
            f"{kind}: vertex label {value!r} must be int, float or str"
        )
    return value


# ---------------------------------------------------------------------- #
# CliqueRecord
# ---------------------------------------------------------------------- #
_RECORD_KEYS = frozenset({"vertices", "probability"})


def record_to_wire(record: CliqueRecord) -> dict[str, Any]:
    """Encode one clique record (vertices in canonical sorted order)."""
    return _envelope(
        "clique-record",
        {
            "vertices": [_vertex_to_wire(v) for v in record.as_tuple()],
            "probability": record.probability,
        },
    )


def record_from_wire(payload: object) -> CliqueRecord:
    payload = _open_envelope(payload, "clique-record", _RECORD_KEYS)
    raw = _field(payload, "clique-record", "vertices", list)
    vertices = frozenset(_vertex_from_wire(v, "clique-record") for v in raw)
    if len(vertices) != len(raw):
        raise FormatError("clique-record: duplicate vertices")
    probability = _number(payload, "clique-record", "probability")
    return CliqueRecord(vertices=vertices, probability=probability)


_RECORDS_KEYS = frozenset({"records"})


def records_to_wire(records: Iterable[CliqueRecord]) -> dict[str, Any]:
    """Encode a standalone list of clique records."""
    return _envelope(
        "clique-records", {"records": [record_to_wire(r) for r in records]}
    )


def records_from_wire(payload: object) -> list[CliqueRecord]:
    payload = _open_envelope(payload, "clique-records", _RECORDS_KEYS)
    raw = _field(payload, "clique-records", "records", list)
    return [record_from_wire(item) for item in raw]


# ---------------------------------------------------------------------- #
# SearchStatistics / RunReport / RunControls
# ---------------------------------------------------------------------- #
_STATISTICS_KEYS = frozenset(
    {
        "recursive_calls",
        "candidates_examined",
        "probability_multiplications",
        "maximality_checks",
        "pruned_branches",
    }
)


def statistics_to_wire(statistics: SearchStatistics) -> dict[str, Any]:
    return _envelope(
        "search-statistics",
        {key: getattr(statistics, key) for key in _STATISTICS_KEYS},
    )


def statistics_from_wire(payload: object) -> SearchStatistics:
    payload = _open_envelope(payload, "search-statistics", _STATISTICS_KEYS)
    counters = {}
    for key in _STATISTICS_KEYS:
        value = _field(payload, "search-statistics", key, int)
        if value < 0:
            raise FormatError(f"search-statistics.{key} must be >= 0, got {value}")
        counters[key] = value
    return SearchStatistics(**counters)


_REPORT_KEYS = frozenset({"stop_reason", "cliques_emitted", "frames_expanded"})


def report_to_wire(report: RunReport) -> dict[str, Any]:
    return _envelope(
        "run-report",
        {
            "stop_reason": report.stop_reason,
            "cliques_emitted": report.cliques_emitted,
            "frames_expanded": report.frames_expanded,
        },
    )


def report_from_wire(payload: object) -> RunReport:
    payload = _open_envelope(payload, "run-report", _REPORT_KEYS)
    stop_reason = _field(payload, "run-report", "stop_reason", str)
    if stop_reason not in _STOP_REASONS:
        raise FormatError(
            f"run-report.stop_reason must be one of {_STOP_REASONS}, "
            f"got {stop_reason!r}"
        )
    counters = {}
    for key in ("cliques_emitted", "frames_expanded"):
        value = _field(payload, "run-report", key, int)
        if value < 0:
            raise FormatError(f"run-report.{key} must be >= 0, got {value}")
        counters[key] = value
    return RunReport(stop_reason=stop_reason, **counters)


_CONTROLS_KEYS = frozenset(
    {"max_cliques", "time_budget_seconds", "check_every_frames"}
)


def controls_to_wire(controls: RunControls) -> dict[str, Any]:
    return _envelope(
        "run-controls",
        {
            "max_cliques": controls.max_cliques,
            "time_budget_seconds": controls.time_budget_seconds,
            "check_every_frames": controls.check_every_frames,
        },
    )


def controls_from_wire(payload: object) -> RunControls:
    payload = _open_envelope(payload, "run-controls", _CONTROLS_KEYS)
    return RunControls(
        max_cliques=_field(payload, "run-controls", "max_cliques", int, optional=True),
        time_budget_seconds=_number(
            payload, "run-controls", "time_budget_seconds", optional=True
        ),
        check_every_frames=_field(
            payload, "run-controls", "check_every_frames", int
        ),
    )


# ---------------------------------------------------------------------- #
# EnumerationRequest
# ---------------------------------------------------------------------- #
_REQUEST_KEYS = frozenset(
    {
        "algorithm",
        "alpha",
        "k",
        "size_threshold",
        "min_size",
        "prune_edges",
        "shared_neighborhood_filtering",
        "controls",
        "workers",
        "num_shards",
        "backend",
        "execution",
    }
)


def request_to_wire(request: EnumerationRequest) -> dict[str, Any]:
    """Encode a request.  Every field is explicit (nullable ones as null).

    The ``kernel`` and ``root_shard`` fields are the exceptions: they were
    added after the v1 envelope shape was frozen, so each rides as an
    *additive* v2 key — emitted only when it deviates from its default
    (``"auto"`` / ``None``), and its presence promotes the envelope to
    ``schema: 2``.  A request that touches neither therefore still encodes
    to the exact v1 bytes the conformance corpus pins.
    """
    fields = {
        "algorithm": request.algorithm,
        "alpha": request.alpha,
        "k": request.k,
        "size_threshold": request.size_threshold,
        "min_size": request.min_size,
        "prune_edges": request.prune_edges,
        "shared_neighborhood_filtering": request.shared_neighborhood_filtering,
        "controls": (
            None if request.controls is None else controls_to_wire(request.controls)
        ),
        "workers": request.workers,
        "num_shards": request.num_shards,
        "backend": request.backend,
        "execution": request.execution,
    }
    version = SCHEMA_VERSION
    if request.kernel != "auto":
        fields["kernel"] = request.kernel
        version = SCHEMA_VERSION_V2
    if request.root_shard is not None:
        fields["root_shard"] = [_vertex_to_wire(v) for v in request.root_shard]
        version = SCHEMA_VERSION_V2
    return _envelope("enumeration-request", fields, version=version)


def request_from_wire(payload: object) -> EnumerationRequest:
    kind = "enumeration-request"
    keys = _REQUEST_KEYS
    kernel = "auto"
    if isinstance(payload, dict):
        # Additive v2 keys: a v1 speaker cannot have produced them, so an
        # envelope carrying one while claiming schema 1 is rejected.  Each
        # key widens the expected set independently (the branches spell the
        # sets out literally so the wire-freeze rule can read them).
        has_kernel = "kernel" in payload
        has_root_shard = "root_shard" in payload
        if has_kernel or has_root_shard:
            if payload.get("schema") == SCHEMA_VERSION:
                present = "kernel" if has_kernel else "root_shard"
                raise FormatError(
                    f"{kind}.{present} requires schema >= {SCHEMA_VERSION_V2}"
                )
            if has_kernel and has_root_shard:
                keys = _REQUEST_KEYS | {"kernel", "root_shard"}
            elif has_kernel:
                keys = _REQUEST_KEYS | {"kernel"}
            else:
                keys = _REQUEST_KEYS | {"root_shard"}
    payload = _open_envelope(payload, kind, keys)
    if "kernel" in payload:
        kernel = _field(payload, kind, "kernel", str)
    root_shard: tuple[int | float | str, ...] | None = None
    if "root_shard" in payload:
        raw = _field(payload, kind, "root_shard", list)
        root_shard = tuple(_vertex_from_wire(v, kind) for v in raw)
    controls = payload["controls"]
    return EnumerationRequest(
        algorithm=_field(payload, kind, "algorithm", str),
        alpha=_number(payload, kind, "alpha", optional=True),
        k=_field(payload, kind, "k", int, optional=True),
        size_threshold=_field(payload, kind, "size_threshold", int, optional=True),
        min_size=_field(payload, kind, "min_size", int),
        prune_edges=_field(payload, kind, "prune_edges", bool),
        shared_neighborhood_filtering=_field(
            payload, kind, "shared_neighborhood_filtering", bool
        ),
        controls=None if controls is None else controls_from_wire(controls),
        workers=_field(payload, kind, "workers", int, optional=True),
        num_shards=_field(payload, kind, "num_shards", int, optional=True),
        backend=_field(payload, kind, "backend", str),
        execution=_field(payload, kind, "execution", str),
        kernel=kernel,
        root_shard=root_shard,
    )


# ---------------------------------------------------------------------- #
# EnumerationOutcome
# ---------------------------------------------------------------------- #
_OUTCOME_KEYS = frozenset(
    {
        "algorithm",
        "alpha",
        "records",
        "statistics",
        "report",
        "elapsed_seconds",
        "request",
    }
)


def outcome_to_wire(outcome: EnumerationOutcome) -> dict[str, Any]:
    return _envelope(
        "enumeration-outcome",
        {
            "algorithm": outcome.algorithm,
            "alpha": outcome.alpha,
            "records": [record_to_wire(r) for r in outcome.records],
            "statistics": statistics_to_wire(outcome.statistics),
            "report": report_to_wire(outcome.report),
            "elapsed_seconds": outcome.elapsed_seconds,
            "request": (
                None if outcome.request is None else request_to_wire(outcome.request)
            ),
        },
    )


def outcome_from_wire(payload: object) -> EnumerationOutcome:
    payload = _open_envelope(payload, "enumeration-outcome", _OUTCOME_KEYS)
    kind = "enumeration-outcome"
    elapsed = _number(payload, kind, "elapsed_seconds")
    if elapsed < 0:
        raise FormatError(f"{kind}.elapsed_seconds must be >= 0, got {elapsed}")
    raw_records = _field(payload, kind, "records", list)
    request = payload["request"]
    return EnumerationOutcome(
        algorithm=_field(payload, kind, "algorithm", str),
        alpha=_number(payload, kind, "alpha", optional=True),
        records=[record_from_wire(item) for item in raw_records],
        statistics=statistics_from_wire(payload["statistics"]),
        report=report_from_wire(payload["report"]),
        elapsed_seconds=elapsed,
        request=None if request is None else request_from_wire(request),
    )


# ---------------------------------------------------------------------- #
# Service envelopes: sweeps, outcome lists, errors
# ---------------------------------------------------------------------- #
_SWEEP_KEYS = frozenset({"request", "alphas"})


def sweep_to_wire(request: EnumerationRequest, alphas: Sequence[float]) -> dict[str, Any]:
    """Encode a sweep: one base request re-run at each of ``alphas``."""
    return _envelope(
        "sweep-request",
        {"request": request_to_wire(request), "alphas": list(alphas)},
    )


def sweep_from_wire(payload: object) -> tuple[EnumerationRequest, list[float]]:
    payload = _open_envelope(payload, "sweep-request", _SWEEP_KEYS)
    raw = _field(payload, "sweep-request", "alphas", list)
    if not raw:
        raise FormatError("sweep-request.alphas must not be empty")
    alphas = []
    for value in raw:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise FormatError(
                f"sweep-request.alphas entries must be numbers, got {value!r}"
            )
        alphas.append(float(value))
    return request_from_wire(payload["request"]), alphas


_OUTCOME_LIST_KEYS = frozenset({"outcomes"})


def outcomes_to_wire(outcomes: Iterable[EnumerationOutcome]) -> dict[str, Any]:
    return _envelope(
        "outcome-list", {"outcomes": [outcome_to_wire(o) for o in outcomes]}
    )


def outcomes_from_wire(payload: object) -> list[EnumerationOutcome]:
    payload = _open_envelope(payload, "outcome-list", _OUTCOME_LIST_KEYS)
    raw = _field(payload, "outcome-list", "outcomes", list)
    return [outcome_from_wire(item) for item in raw]


_ERROR_KEYS = frozenset({"type", "message"})


def error_to_wire(exc: BaseException) -> dict[str, Any]:
    """Encode an exception (non-library types degrade to their class name)."""
    return _envelope(
        "error", {"type": type(exc).__name__, "message": str(exc)}
    )


def error_from_wire(payload: object) -> ReproError:
    """Rebuild the library exception an error envelope describes.

    Known :mod:`repro.errors` types are reconstructed so remote callers can
    ``except ParameterError`` exactly as local ones do; anything else
    (including server-side internal errors) degrades to a plain
    :class:`ReproError` that names the original type.
    """
    payload = _open_envelope(payload, "error", _ERROR_KEYS)
    type_name = _field(payload, "error", "type", str)
    message = _field(payload, "error", "message", str)
    cls = getattr(_errors, type_name, None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        return cls(message)
    return ReproError(f"{type_name}: {message}")


# ---------------------------------------------------------------------- #
# Schema v2: graphs as wire values and as references
# ---------------------------------------------------------------------- #
def _vertex_sort_key(vertex: Any) -> tuple[int, Any]:
    """Canonical vertex order: numbers (by exact value) before strings.

    Mixed int/float comparisons are exact in Python, and ``==``-equal
    numerics are the same graph vertex, so ordering by value is total over
    any one graph's vertex set.
    """
    if isinstance(vertex, (int, float)):
        return (0, vertex)
    return (1, vertex)


_GRAPH_KEYS = frozenset({"vertices", "edges"})


def graph_to_wire(graph: UncertainGraph) -> dict[str, Any]:
    """Encode an uncertain graph losslessly (kind ``graph``, schema v2).

    Canonical form: vertices sorted (numbers by value, then strings),
    every edge as ``[u, v, p]`` with ``u`` before ``v`` in that order and
    the edge list sorted likewise.  Probabilities ride as JSON numbers —
    :func:`encode` renders floats by shortest round-trip ``repr``, so the
    exact bit pattern survives.  Labels must be ``int``/``float``/``str``
    (the same restriction clique records have); isolated vertices are
    preserved by the explicit vertex list.
    """
    vertices = sorted((_vertex_to_wire(v) for v in graph.vertices()), key=_vertex_sort_key)
    edges = []
    for u, v, p in graph.edges():
        u, v = sorted((_vertex_to_wire(u), _vertex_to_wire(v)), key=_vertex_sort_key)
        edges.append([u, v, p])
    edges.sort(key=lambda e: (_vertex_sort_key(e[0]), _vertex_sort_key(e[1])))
    return _envelope(
        "graph",
        {"vertices": vertices, "edges": edges},
        version=SCHEMA_VERSION_V2,
    )


def graph_from_wire(payload: object) -> UncertainGraph:
    """Rebuild an :class:`UncertainGraph` from a ``graph`` envelope.

    Structural problems (malformed entries, duplicate vertices or edges,
    endpoints missing from the vertex list) raise
    :class:`~repro.errors.FormatError`; domain problems (self-loops,
    probabilities outside ``(0, 1]``) raise exactly what local
    construction raises.
    """
    payload = _open_envelope(
        payload, "graph", _GRAPH_KEYS, min_version=SCHEMA_VERSION_V2
    )
    raw_vertices = _field(payload, "graph", "vertices", list)
    graph = UncertainGraph()
    seen = set()
    for value in raw_vertices:
        vertex = _vertex_from_wire(value, "graph")
        if vertex in seen:
            raise FormatError(f"graph: duplicate vertex {vertex!r}")
        seen.add(vertex)
        graph.add_vertex(vertex)
    raw_edges = _field(payload, "graph", "edges", list)
    seen_edges = set()
    for entry in raw_edges:
        if not isinstance(entry, list) or len(entry) != 3:
            raise FormatError(f"graph: edge entry must be [u, v, p], got {entry!r}")
        u = _vertex_from_wire(entry[0], "graph")
        v = _vertex_from_wire(entry[1], "graph")
        if u not in seen or v not in seen:
            raise FormatError(
                f"graph: edge endpoint missing from the vertex list: {entry!r}"
            )
        p = entry[2]
        if isinstance(p, bool) or not isinstance(p, (int, float)):
            raise FormatError(f"graph: edge probability must be a number, got {p!r}")
        pair = frozenset((u, v))
        if pair in seen_edges:
            raise FormatError(f"graph: duplicate edge {sorted(entry[:2], key=str)}")
        seen_edges.add(pair)
        graph.add_edge(u, v, float(p))
    return graph


_GRAPH_INFO_KEYS = frozenset(
    {"fingerprint", "name", "num_vertices", "num_edges", "pinned", "default"}
)


def graph_info_to_wire(info: GraphInfo) -> dict[str, Any]:
    """Encode one stored graph's resource description."""
    return _envelope(
        "graph-info",
        {
            "fingerprint": info.fingerprint,
            "name": info.name,
            "num_vertices": info.num_vertices,
            "num_edges": info.num_edges,
            "pinned": info.pinned,
            "default": info.default,
        },
        version=SCHEMA_VERSION_V2,
    )


def graph_info_from_wire(payload: object) -> GraphInfo:
    payload = _open_envelope(
        payload, "graph-info", _GRAPH_INFO_KEYS, min_version=SCHEMA_VERSION_V2
    )
    kind = "graph-info"
    counts = {}
    for key in ("num_vertices", "num_edges"):
        value = _field(payload, kind, key, int)
        if value < 0:
            raise FormatError(f"{kind}.{key} must be >= 0, got {value}")
        counts[key] = value
    return GraphInfo(
        fingerprint=_field(payload, kind, "fingerprint", str),
        name=_field(payload, kind, "name", str, optional=True),
        pinned=_field(payload, kind, "pinned", bool),
        default=_field(payload, kind, "default", bool),
        **counts,
    )


_GRAPH_LIST_KEYS = frozenset({"graphs"})


def graph_list_to_wire(infos: Iterable[GraphInfo]) -> dict[str, Any]:
    """Encode the store listing (``GET /v2/graphs``)."""
    return _envelope(
        "graph-list",
        {"graphs": [graph_info_to_wire(info) for info in infos]},
        version=SCHEMA_VERSION_V2,
    )


def graph_list_from_wire(payload: object) -> list[GraphInfo]:
    payload = _open_envelope(
        payload, "graph-list", _GRAPH_LIST_KEYS, min_version=SCHEMA_VERSION_V2
    )
    raw = _field(payload, "graph-list", "graphs", list)
    return [graph_info_from_wire(item) for item in raw]


class GraphUpload(NamedTuple):
    """A decoded ``graph-upload`` request: one of two graph sources.

    Either ``graph`` (a literal uploaded graph) or ``dataset`` (a named
    Table 1 analog built server-side at ``scale``/``seed``) is set, never
    both.  ``name`` optionally registers the graph under a store name.
    """

    graph: "UncertainGraph | None" = None
    dataset: "str | None" = None
    scale: "float | None" = None
    seed: "int | None" = None
    name: "str | None" = None


_UPLOAD_KEYS = frozenset({"graph", "dataset", "scale", "seed", "name"})


def upload_to_wire(upload: GraphUpload) -> dict[str, Any]:
    """Encode a graph-creation request (``POST /v2/graphs``)."""
    if (upload.graph is None) == (upload.dataset is None):
        raise FormatError(
            "graph-upload must carry exactly one of graph / dataset"
        )
    if upload.dataset is None and (upload.scale is not None or upload.seed is not None):
        raise FormatError("graph-upload: scale/seed are only valid with dataset")
    return _envelope(
        "graph-upload",
        {
            "graph": None if upload.graph is None else graph_to_wire(upload.graph),
            "dataset": upload.dataset,
            "scale": upload.scale,
            "seed": upload.seed,
            "name": upload.name,
        },
        version=SCHEMA_VERSION_V2,
    )


def upload_from_wire(payload: object) -> GraphUpload:
    payload = _open_envelope(
        payload, "graph-upload", _UPLOAD_KEYS, min_version=SCHEMA_VERSION_V2
    )
    kind = "graph-upload"
    raw_graph = payload["graph"]
    upload = GraphUpload(
        graph=None if raw_graph is None else graph_from_wire(raw_graph),
        dataset=_field(payload, kind, "dataset", str, optional=True),
        scale=_number(payload, kind, "scale", optional=True),
        seed=_field(payload, kind, "seed", int, optional=True),
        name=_field(payload, kind, "name", str, optional=True),
    )
    if (upload.graph is None) == (upload.dataset is None):
        raise FormatError(f"{kind} must carry exactly one of graph / dataset")
    if upload.dataset is None and (upload.scale is not None or upload.seed is not None):
        raise FormatError(f"{kind}: scale/seed are only valid with dataset")
    return upload


_REF_REQUEST_KEYS = frozenset({"graph", "request"})


def ref_request_to_wire(request: EnumerationRequest, *, graph: str | None) -> dict[str, Any]:
    """Encode a v2 enumeration: the request plus the graph it targets.

    ``graph`` is a store reference (registered name or fingerprint);
    ``None`` targets the server's default graph — the v2 spelling of what
    ``/v1/enumerate`` does implicitly.
    """
    return _envelope(
        "graph-ref-request",
        {"graph": graph, "request": request_to_wire(request)},
        version=SCHEMA_VERSION_V2,
    )


def ref_request_from_wire(payload: object) -> "tuple[str | None, EnumerationRequest]":
    payload = _open_envelope(
        payload, "graph-ref-request", _REF_REQUEST_KEYS,
        min_version=SCHEMA_VERSION_V2,
    )
    ref = _field(payload, "graph-ref-request", "graph", str, optional=True)
    return ref, request_from_wire(payload["request"])


_REF_SWEEP_KEYS = frozenset({"graph", "request", "alphas"})


def ref_sweep_to_wire(
    request: EnumerationRequest, alphas: Sequence[float], *, graph: str | None
) -> dict[str, Any]:
    """Encode a v2 sweep: one base request, many α, one named graph."""
    return _envelope(
        "graph-ref-sweep",
        {
            "graph": graph,
            "request": request_to_wire(request),
            "alphas": list(alphas),
        },
        version=SCHEMA_VERSION_V2,
    )


def ref_sweep_from_wire(
    payload: object,
) -> "tuple[str | None, EnumerationRequest, list[float]]":
    payload = _open_envelope(
        payload, "graph-ref-sweep", _REF_SWEEP_KEYS, min_version=SCHEMA_VERSION_V2
    )
    ref = _field(payload, "graph-ref-sweep", "graph", str, optional=True)
    raw = _field(payload, "graph-ref-sweep", "alphas", list)
    if not raw:
        raise FormatError("graph-ref-sweep.alphas must not be empty")
    alphas = []
    for value in raw:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise FormatError(
                f"graph-ref-sweep.alphas entries must be numbers, got {value!r}"
            )
        alphas.append(float(value))
    return ref, request_from_wire(payload["request"]), alphas


# ---------------------------------------------------------------------- #
# Schema v2: asynchronous jobs
# ---------------------------------------------------------------------- #
class JobStatus(NamedTuple):
    """A decoded ``job-status`` envelope: one job's observable state.

    ``records`` is the number of clique records the job has produced so
    far (monotonically non-decreasing); ``error`` is set exactly when
    ``state == "failed"``.
    """

    id: str
    state: str
    cliques_emitted: int
    frames_expanded: int
    elapsed_seconds: float
    records: int
    error: "BaseException | None" = None


class JobChunk(NamedTuple):
    """A decoded ``job-result-chunk`` envelope: one NDJSON stream line.

    Non-final chunks carry only records.  The final chunk carries exactly
    one of ``summary`` (an :class:`EnumerationOutcome` without records —
    the job reached ``done`` or ``cancelled``) or ``error`` (the job
    failed).  ``seq`` is the chunk's cursor position: re-requesting the
    stream with ``cursor=seq`` re-reads from this chunk.
    """

    job: str
    seq: int
    records: "tuple[CliqueRecord, ...]"
    final: bool
    summary: "EnumerationOutcome | None" = None
    error: "BaseException | None" = None


_JOB_REQUEST_KEYS = frozenset({"graph", "request", "page_size"})


def job_request_to_wire(
    request: EnumerationRequest,
    *,
    graph: str | None = None,
    page_size: int | None = None,
) -> dict[str, Any]:
    """Encode a job submission (``POST /v2/jobs``).

    ``graph`` is a store reference (name or fingerprint, ``None`` for the
    server default) and ``page_size`` overrides the server's result-page
    granularity (``None`` accepts the default).
    """
    return _envelope(
        "job-request",
        {
            "graph": graph,
            "request": request_to_wire(request),
            "page_size": page_size,
        },
        version=SCHEMA_VERSION_V2,
    )


def job_request_from_wire(
    payload: object,
) -> "tuple[str | None, EnumerationRequest, int | None]":
    payload = _open_envelope(
        payload, "job-request", _JOB_REQUEST_KEYS, min_version=SCHEMA_VERSION_V2
    )
    kind = "job-request"
    ref = _field(payload, kind, "graph", str, optional=True)
    page_size = _field(payload, kind, "page_size", int, optional=True)
    if page_size is not None and page_size < 1:
        raise FormatError(f"{kind}.page_size must be >= 1, got {page_size}")
    return ref, request_from_wire(payload["request"]), page_size


_JOB_STATUS_KEYS = frozenset(
    {"id", "state", "cliques_emitted", "frames_expanded",
     "elapsed_seconds", "records", "error"}
)


def job_status_to_wire(status: JobStatus) -> dict[str, Any]:
    """Encode one job's status snapshot (``GET /v2/jobs/{id}``)."""
    if status.state not in JOB_STATES:
        raise FormatError(
            f"job-status.state must be one of {JOB_STATES}, got {status.state!r}"
        )
    if (status.error is not None) != (status.state == "failed"):
        raise FormatError("job-status.error must be set exactly when failed")
    return _envelope(
        "job-status",
        {
            "id": status.id,
            "state": status.state,
            "cliques_emitted": status.cliques_emitted,
            "frames_expanded": status.frames_expanded,
            "elapsed_seconds": status.elapsed_seconds,
            "records": status.records,
            "error": None if status.error is None else error_to_wire(status.error),
        },
        version=SCHEMA_VERSION_V2,
    )


def job_status_from_wire(payload: object) -> JobStatus:
    payload = _open_envelope(
        payload, "job-status", _JOB_STATUS_KEYS, min_version=SCHEMA_VERSION_V2
    )
    kind = "job-status"
    state = _field(payload, kind, "state", str)
    if state not in JOB_STATES:
        raise FormatError(
            f"{kind}.state must be one of {JOB_STATES}, got {state!r}"
        )
    counters = {}
    for key in ("cliques_emitted", "frames_expanded", "records"):
        value = _field(payload, kind, key, int)
        if value < 0:
            raise FormatError(f"{kind}.{key} must be >= 0, got {value}")
        counters[key] = value
    elapsed = _number(payload, kind, "elapsed_seconds")
    if elapsed < 0:
        raise FormatError(f"{kind}.elapsed_seconds must be >= 0, got {elapsed}")
    raw_error = payload["error"]
    if (raw_error is not None) != (state == "failed"):
        raise FormatError(f"{kind}.error must be set exactly when failed")
    return JobStatus(
        id=_field(payload, kind, "id", str),
        state=state,
        elapsed_seconds=elapsed,
        error=None if raw_error is None else error_from_wire(raw_error),
        **counters,
    )


_JOB_SUMMARY_KEYS = frozenset(
    {"algorithm", "alpha", "statistics", "report", "elapsed_seconds", "request"}
)


def job_summary_to_wire(outcome: EnumerationOutcome) -> dict[str, Any]:
    """Encode a job's terminal summary: an outcome *minus* its records.

    The records already travelled in the stream's earlier chunks; the
    summary carries everything :meth:`EnumerationOutcome.assert_matches`
    needs beyond them, so client-side reassembly is bit-exact.
    """
    return _envelope(
        "job-summary",
        {
            "algorithm": outcome.algorithm,
            "alpha": outcome.alpha,
            "statistics": statistics_to_wire(outcome.statistics),
            "report": report_to_wire(outcome.report),
            "elapsed_seconds": outcome.elapsed_seconds,
            "request": (
                None if outcome.request is None else request_to_wire(outcome.request)
            ),
        },
        version=SCHEMA_VERSION_V2,
    )


def job_summary_from_wire(payload: object) -> EnumerationOutcome:
    payload = _open_envelope(
        payload, "job-summary", _JOB_SUMMARY_KEYS, min_version=SCHEMA_VERSION_V2
    )
    kind = "job-summary"
    elapsed = _number(payload, kind, "elapsed_seconds")
    if elapsed < 0:
        raise FormatError(f"{kind}.elapsed_seconds must be >= 0, got {elapsed}")
    request = payload["request"]
    return EnumerationOutcome(
        algorithm=_field(payload, kind, "algorithm", str),
        alpha=_number(payload, kind, "alpha", optional=True),
        records=[],
        statistics=statistics_from_wire(payload["statistics"]),
        report=report_from_wire(payload["report"]),
        elapsed_seconds=elapsed,
        request=None if request is None else request_from_wire(request),
    )


_JOB_CHUNK_KEYS = frozenset(
    {"job", "seq", "records", "final", "summary", "error"}
)


def job_chunk_to_wire(chunk: JobChunk) -> dict[str, Any]:
    """Encode one result-stream chunk (a line of ``GET .../results``)."""
    if chunk.final:
        if (chunk.summary is None) == (chunk.error is None):
            raise FormatError(
                "job-result-chunk: a final chunk carries exactly one of "
                "summary / error"
            )
    elif chunk.summary is not None or chunk.error is not None:
        raise FormatError(
            "job-result-chunk: summary/error are only valid on the final chunk"
        )
    return _envelope(
        "job-result-chunk",
        {
            "job": chunk.job,
            "seq": chunk.seq,
            "records": [record_to_wire(r) for r in chunk.records],
            "final": chunk.final,
            "summary": (
                None if chunk.summary is None else job_summary_to_wire(chunk.summary)
            ),
            "error": None if chunk.error is None else error_to_wire(chunk.error),
        },
        version=SCHEMA_VERSION_V2,
    )


def job_chunk_from_wire(payload: object) -> JobChunk:
    payload = _open_envelope(
        payload, "job-result-chunk", _JOB_CHUNK_KEYS,
        min_version=SCHEMA_VERSION_V2,
    )
    kind = "job-result-chunk"
    seq = _field(payload, kind, "seq", int)
    if seq < 0:
        raise FormatError(f"{kind}.seq must be >= 0, got {seq}")
    final = _field(payload, kind, "final", bool)
    raw_records = _field(payload, kind, "records", list)
    raw_summary = payload["summary"]
    raw_error = payload["error"]
    if final:
        if (raw_summary is None) == (raw_error is None):
            raise FormatError(
                f"{kind}: a final chunk carries exactly one of summary / error"
            )
    elif raw_summary is not None or raw_error is not None:
        raise FormatError(
            f"{kind}: summary/error are only valid on the final chunk"
        )
    return JobChunk(
        job=_field(payload, kind, "job", str),
        seq=seq,
        records=tuple(record_from_wire(item) for item in raw_records),
        final=final,
        summary=None if raw_summary is None else job_summary_from_wire(raw_summary),
        error=None if raw_error is None else error_from_wire(raw_error),
    )


_JOB_LIST_KEYS = frozenset({"jobs"})


def job_list_to_wire(statuses: Iterable[JobStatus]) -> dict[str, Any]:
    """Encode the registry listing (``GET /v2/jobs``)."""
    return _envelope(
        "job-list",
        {"jobs": [job_status_to_wire(status) for status in statuses]},
        version=SCHEMA_VERSION_V2,
    )


def job_list_from_wire(payload: object) -> list[JobStatus]:
    payload = _open_envelope(
        payload, "job-list", _JOB_LIST_KEYS, min_version=SCHEMA_VERSION_V2
    )
    raw = _field(payload, "job-list", "jobs", list)
    return [job_status_from_wire(item) for item in raw]


# ---------------------------------------------------------------------- #
# Schema v2: observability snapshots
# ---------------------------------------------------------------------- #
_METRICS_KEYS = frozenset({"counters", "gauges", "histograms"})

#: The exact per-histogram summary fields a ``metrics`` envelope carries.
_METRICS_HISTOGRAM_FIELDS = ("bounds", "counts", "sum", "count", "p50", "p99")


def _metric_series_to_wire(
    snapshot: Mapping[str, Any], section: str
) -> dict[str, float]:
    raw = snapshot.get(section)
    if not isinstance(raw, Mapping):
        raise FormatError(f"metrics snapshot.{section} must be a mapping")
    series: dict[str, float] = {}
    for name in sorted(raw):
        if not isinstance(name, str):
            raise FormatError(
                f"metrics.{section} keys must be strings, got {name!r}"
            )
        value = raw[name]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise FormatError(
                f"metrics.{section}[{name!r}] must be a number, got {value!r}"
            )
        series[name] = float(value)
    return series


def _metric_histogram_to_wire(name: str, data: Mapping[str, Any]) -> dict[str, Any]:
    if not isinstance(data, Mapping) or set(data) != set(_METRICS_HISTOGRAM_FIELDS):
        raise FormatError(
            f"metrics.histograms[{name!r}] must carry exactly "
            f"{sorted(_METRICS_HISTOGRAM_FIELDS)}"
        )
    bounds = data["bounds"]
    counts = data["counts"]
    if not isinstance(bounds, Sequence) or isinstance(bounds, str):
        raise FormatError(f"metrics.histograms[{name!r}].bounds must be a list")
    if not isinstance(counts, Sequence) or isinstance(counts, str):
        raise FormatError(f"metrics.histograms[{name!r}].counts must be a list")
    out: dict[str, Any] = {
        "bounds": [float(edge) for edge in bounds],
        "counts": [int(count) for count in counts],
        "sum": float(data["sum"]),
        "count": int(data["count"]),
        "p50": float(data["p50"]),
        "p99": float(data["p99"]),
    }
    return out


def metrics_to_wire(snapshot: Mapping[str, Any]) -> dict[str, Any]:
    """Encode a registry snapshot (``GET /v1/metrics``, kind ``metrics``).

    ``snapshot`` is the :meth:`repro.obs.MetricsRegistry.snapshot` shape:
    flattened series names (``name`` or ``name{label=value,...}``) mapping
    to counter/gauge numbers, and per-histogram summaries carrying the
    deterministic bucket ``bounds``/``counts`` plus ``sum``/``count`` and
    the derived ``p50``/``p99`` estimates.
    """
    raw_histograms = snapshot.get("histograms")
    if not isinstance(raw_histograms, Mapping):
        raise FormatError("metrics snapshot.histograms must be a mapping")
    counters = _metric_series_to_wire(snapshot, "counters")
    gauges = _metric_series_to_wire(snapshot, "gauges")
    histograms = {
        str(name): _metric_histogram_to_wire(str(name), raw_histograms[name])
        for name in sorted(raw_histograms)
    }
    return _envelope(
        "metrics",
        {"counters": counters, "gauges": gauges, "histograms": histograms},
        version=SCHEMA_VERSION_V2,
    )


def _metric_series_from_wire(
    payload: dict[str, Any], section: str
) -> dict[str, float]:
    raw = _field(payload, "metrics", section, dict)
    series: dict[str, float] = {}
    for name, value in raw.items():
        if not isinstance(name, str):
            raise FormatError(
                f"metrics.{section} keys must be strings, got {name!r}"
            )
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise FormatError(
                f"metrics.{section}[{name!r}] must be a number, got {value!r}"
            )
        series[name] = float(value)
    return series


def _metric_histogram_from_wire(name: str, data: object) -> dict[str, Any]:
    kind = "metrics"
    if not isinstance(data, dict):
        raise FormatError(f"{kind}.histograms[{name!r}] must be an object")
    if set(data) != set(_METRICS_HISTOGRAM_FIELDS):
        raise FormatError(
            f"{kind}.histograms[{name!r}] must carry exactly "
            f"{sorted(_METRICS_HISTOGRAM_FIELDS)}"
        )
    bounds_raw = data["bounds"]
    counts_raw = data["counts"]
    if not isinstance(bounds_raw, list) or not isinstance(counts_raw, list):
        raise FormatError(
            f"{kind}.histograms[{name!r}].bounds/.counts must be lists"
        )
    bounds: list[float] = []
    for edge in bounds_raw:
        if isinstance(edge, bool) or not isinstance(edge, (int, float)):
            raise FormatError(
                f"{kind}.histograms[{name!r}].bounds entries must be numbers"
            )
        bounds.append(float(edge))
    if any(b <= a for a, b in zip(bounds, bounds[1:])):
        raise FormatError(
            f"{kind}.histograms[{name!r}].bounds must be strictly increasing"
        )
    counts: list[int] = []
    for value in counts_raw:
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            raise FormatError(
                f"{kind}.histograms[{name!r}].counts entries must be ints >= 0"
            )
        counts.append(value)
    if len(counts) != len(bounds) + 1:
        raise FormatError(
            f"{kind}.histograms[{name!r}] needs len(bounds) + 1 counts "
            f"(the overflow bucket), got {len(counts)} for {len(bounds)} bounds"
        )
    count = data["count"]
    if isinstance(count, bool) or not isinstance(count, int) or count < 0:
        raise FormatError(f"{kind}.histograms[{name!r}].count must be an int >= 0")
    if count != sum(counts):
        raise FormatError(
            f"{kind}.histograms[{name!r}].count must equal the bucket total"
        )
    summary: dict[str, Any] = {"bounds": bounds, "counts": counts, "count": count}
    for key in ("sum", "p50", "p99"):
        value = data[key]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise FormatError(
                f"{kind}.histograms[{name!r}].{key} must be a number"
            )
        summary[key] = float(value)
    return summary


def metrics_from_wire(payload: object) -> dict[str, Any]:
    """Decode a ``metrics`` envelope back to the plain snapshot dict."""
    payload = _open_envelope(
        payload, "metrics", _METRICS_KEYS, min_version=SCHEMA_VERSION_V2
    )
    raw_histograms = _field(payload, "metrics", "histograms", dict)
    histograms: dict[str, dict[str, Any]] = {}
    for name in raw_histograms:
        if not isinstance(name, str):
            raise FormatError(
                f"metrics.histograms keys must be strings, got {name!r}"
            )
        histograms[name] = _metric_histogram_from_wire(name, raw_histograms[name])
    return {
        "counters": _metric_series_from_wire(payload, "counters"),
        "gauges": _metric_series_from_wire(payload, "gauges"),
        "histograms": histograms,
    }


# ---------------------------------------------------------------------- #
# Generic dispatch
# ---------------------------------------------------------------------- #
def to_wire(obj: object) -> dict[str, Any]:
    """Encode any wire-codable object into its envelope.

    Lists/tuples of :class:`CliqueRecord` become a ``clique-records``
    envelope; everything else dispatches on its type.
    """
    if isinstance(obj, EnumerationRequest):
        return request_to_wire(obj)
    if isinstance(obj, EnumerationOutcome):
        return outcome_to_wire(obj)
    if isinstance(obj, RunControls):
        return controls_to_wire(obj)
    if isinstance(obj, RunReport):
        return report_to_wire(obj)
    if isinstance(obj, SearchStatistics):
        return statistics_to_wire(obj)
    if isinstance(obj, CliqueRecord):
        return record_to_wire(obj)
    if isinstance(obj, UncertainGraph):
        return graph_to_wire(obj)
    if isinstance(obj, GraphInfo):
        return graph_info_to_wire(obj)
    if isinstance(obj, GraphUpload):
        return upload_to_wire(obj)
    if isinstance(obj, JobStatus):
        return job_status_to_wire(obj)
    if isinstance(obj, JobChunk):
        return job_chunk_to_wire(obj)
    if isinstance(obj, (list, tuple)) and obj and all(
        isinstance(item, EnumerationOutcome) for item in obj
    ):
        return outcomes_to_wire(obj)
    if isinstance(obj, (list, tuple)) and obj and all(
        isinstance(item, JobStatus) for item in obj
    ):
        return job_list_to_wire(obj)
    if isinstance(obj, (list, tuple)) and obj and all(
        isinstance(item, GraphInfo) for item in obj
    ):
        return graph_list_to_wire(obj)
    if isinstance(obj, (list, tuple)) and all(
        isinstance(item, CliqueRecord) for item in obj
    ):
        return records_to_wire(obj)
    if isinstance(obj, BaseException):
        return error_to_wire(obj)
    raise FormatError(f"object of type {type(obj).__name__} is not wire-codable")


_DECODERS = {
    "enumeration-request": request_from_wire,
    "enumeration-outcome": outcome_from_wire,
    "run-controls": controls_from_wire,
    "run-report": report_from_wire,
    "search-statistics": statistics_from_wire,
    "clique-record": record_from_wire,
    "clique-records": records_from_wire,
    "outcome-list": outcomes_from_wire,
    "error": error_from_wire,
    "graph": graph_from_wire,
    "graph-info": graph_info_from_wire,
    "graph-list": graph_list_from_wire,
    "graph-upload": upload_from_wire,
    "job-status": job_status_from_wire,
    "job-summary": job_summary_from_wire,
    "job-result-chunk": job_chunk_from_wire,
    "job-list": job_list_from_wire,
    "metrics": metrics_from_wire,
}


def from_wire(payload: object) -> Any:
    """Decode any envelope by its ``kind`` tag (the inverse of :func:`to_wire`).

    ``sweep-request`` / ``graph-ref-request`` / ``graph-ref-sweep`` /
    ``job-request`` payloads are intentionally not dispatched here — they
    decode to *tuples*, not single objects; use their dedicated
    ``*_from_wire`` functions.
    """
    if not isinstance(payload, dict):
        raise FormatError(
            f"wire payload must be a JSON object, got {type(payload).__name__}"
        )
    kind = payload.get("kind")
    decoder = _DECODERS.get(kind)
    if decoder is None:
        raise FormatError(f"unknown wire kind {kind!r}")
    return decoder(payload)
