"""The mining service — wire codec, scheduler, HTTP server and client.

This package makes the compiled-graph cache a **multi-client** resource:
many processes (or machines) share one server-side
:class:`~repro.api.cache.CompiledGraphCache` instead of each compiling the
graph themselves.

* :mod:`repro.service.codec` — lossless, schema-versioned, strictly
  validated JSON round-trips for the session vocabulary
  (:func:`to_wire` / :func:`from_wire`, canonical :func:`encode` bytes).
* :class:`EnumerationScheduler` — bounded thread pool over shared
  :class:`~repro.api.session.MiningSession` objects with single-flight
  compilation dedup and load/cache counters.
* :class:`MiningServer` — the stdlib HTTP server behind
  ``repro-mule serve`` (``POST /v1/enumerate``, ``POST /v1/sweep``,
  ``GET /v1/health``, ``GET /v1/stats``).
* :class:`RemoteSession` — the client mirror of ``MiningSession``:
  ``enumerate()`` / ``sweep()`` / ``cache_info()`` against a remote
  server, returning real :class:`~repro.api.outcome.EnumerationOutcome`
  objects bit-identical to local runs.

See ``docs/service.md`` for the wire schema, endpoint table and
versioning policy.
"""

from .client import RemoteSession
from .codec import SCHEMA_VERSION, decode, encode, from_wire, to_wire
from .scheduler import EnumerationScheduler, SchedulerStats
from .server import MiningServer

__all__ = [
    "MiningServer",
    "RemoteSession",
    "EnumerationScheduler",
    "SchedulerStats",
    "SCHEMA_VERSION",
    "encode",
    "decode",
    "to_wire",
    "from_wire",
]
