"""The mining service — wire codec, scheduler, HTTP server and clients.

This package makes the compiled-graph cache a **multi-client,
multi-graph** resource: one server process hosts a catalog of named
graphs (a :class:`~repro.api.store.GraphStore`), and any number of
processes (or machines) run enumerations against any of them while
sharing one server-side :class:`~repro.api.cache.CompiledGraphCache`.

* :mod:`repro.service.codec` — lossless, schema-versioned, strictly
  validated JSON round-trips for the session vocabulary
  (:func:`to_wire` / :func:`from_wire`, canonical :func:`encode` bytes).
  Schema v2 adds graphs as wire values (``graph``), resource metadata
  (``graph-info`` / ``graph-list`` / ``graph-upload``) and
  graph-referencing requests; every v1 payload still decodes unchanged.
* :class:`EnumerationScheduler` — graph-agnostic bounded thread pool over
  a shared :class:`~repro.api.store.GraphStore` with per-fingerprint
  single-flight compilation dedup and load/cache counters.
* :class:`MiningServer` — the stdlib HTTP server behind
  ``repro-mule serve``: the frozen ``/v1`` surface (default graph) plus
  the ``/v2/graphs`` resource endpoints (upload, list, get, delete,
  per-graph enumerate/sweep).
* :class:`RemoteStore` / :func:`connect` — the client mirror of
  ``GraphStore``: register and address graphs by name over the wire.
* :class:`RemoteSession` — the client mirror of ``MiningSession``:
  ``enumerate()`` / ``sweep()`` / ``cache_info()`` against a remote
  server (default graph via v1, or any named graph via v2), returning
  real :class:`~repro.api.outcome.EnumerationOutcome` objects
  bit-identical to local runs.

See ``docs/service.md`` for the wire schema, endpoint table and
versioning policy.
"""

from .client import RemoteSession, RemoteStore, connect
from .codec import (
    SCHEMA_VERSION,
    SCHEMA_VERSION_V2,
    decode,
    encode,
    from_wire,
    to_wire,
)
from .scheduler import EnumerationScheduler, SchedulerStats
from .server import MiningServer

__all__ = [
    "MiningServer",
    "RemoteSession",
    "RemoteStore",
    "connect",
    "EnumerationScheduler",
    "SchedulerStats",
    "SCHEMA_VERSION",
    "SCHEMA_VERSION_V2",
    "encode",
    "decode",
    "to_wire",
    "from_wire",
]
