"""The mining service — wire codec, scheduler, HTTP server and clients.

This package makes the compiled-graph cache a **multi-client,
multi-graph** resource: one server process hosts a catalog of named
graphs (a :class:`~repro.api.store.GraphStore`), and any number of
processes (or machines) run enumerations against any of them while
sharing one server-side :class:`~repro.api.cache.CompiledGraphCache`.

* :mod:`repro.service.codec` — lossless, schema-versioned, strictly
  validated JSON round-trips for the session vocabulary
  (:func:`to_wire` / :func:`from_wire`, canonical :func:`encode` bytes).
  Schema v2 adds graphs as wire values (``graph``), resource metadata
  (``graph-info`` / ``graph-list`` / ``graph-upload``),
  graph-referencing requests and the async job vocabulary
  (``job-request`` / ``job-status`` / ``job-result-chunk`` /
  ``job-summary`` / ``job-list``); every v1 payload still decodes
  unchanged.
* :mod:`repro.service.jobs` — the asynchronous job pipeline every
  enumeration runs through: :class:`Job` (persistent state machine
  ``queued → running → done | failed | cancelled``, bounded page buffer
  with backpressure, cooperative cancellation, live progress) and
  :class:`JobRegistry` (id space, lookup, retention).
* :class:`EnumerationScheduler` — graph-agnostic bounded thread pool over
  a shared :class:`~repro.api.store.GraphStore` with per-fingerprint
  single-flight compilation dedup and load/cache counters; synchronous
  ``run``/``batch``/``sweep`` are submit + await over the job pipeline.
* :class:`MiningServer` — the stdlib HTTP server behind
  ``repro-mule serve``: the frozen ``/v1`` surface (default graph), the
  ``/v2/graphs`` resource endpoints (upload, list, get, delete,
  per-graph enumerate/sweep) and the ``/v2/jobs`` async endpoints
  (submit, status, NDJSON result streaming, cancel) with graceful
  drain-on-close.
* :class:`RemoteStore` / :func:`connect` — the client mirror of
  ``GraphStore``: register and address graphs by name over the wire.
* :class:`RemoteSession` — the client mirror of ``MiningSession``:
  ``enumerate()`` / ``sweep()`` / ``cache_info()`` against a remote
  server (default graph via v1, or any named graph via v2), returning
  real :class:`~repro.api.outcome.EnumerationOutcome` objects
  bit-identical to local runs — plus ``submit()`` for async jobs.
* :class:`RemoteJob` — the client handle on a server-side job: poll
  ``status()``, stream ``iter_results()`` live with cursor-resumable
  reconnection, ``cancel()``, or block on ``wait()`` for an outcome
  bit-identical to the synchronous path.

See ``docs/service.md`` for the wire schema, endpoint table and
versioning policy.
"""

from .client import RemoteJob, RemoteSession, RemoteStore, connect
from .codec import (
    SCHEMA_VERSION,
    SCHEMA_VERSION_V2,
    decode,
    encode,
    from_wire,
    to_wire,
)
from .jobs import Job, JobRegistry, JobState
from .scheduler import EnumerationScheduler, SchedulerStats
from .server import MiningServer

__all__ = [
    "MiningServer",
    "RemoteJob",
    "RemoteSession",
    "RemoteStore",
    "connect",
    "EnumerationScheduler",
    "SchedulerStats",
    "Job",
    "JobRegistry",
    "JobState",
    "SCHEMA_VERSION",
    "SCHEMA_VERSION_V2",
    "encode",
    "decode",
    "to_wire",
    "from_wire",
]
