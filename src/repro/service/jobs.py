"""The asynchronous job pipeline: per-job state machines and paged results.

Every enumeration the service executes — including the synchronous
``/v1/enumerate`` path, which is now ``submit + await`` over this module —
runs as a :class:`Job`:

* a **persistent state machine** ``queued → running → done | failed |
  cancelled`` (terminal states stick; ``cancel()`` returning ``True``
  guarantees the job ends ``cancelled``, returning ``False`` guarantees the
  already-reached terminal state is untouched, so a cancel racing
  completion always settles deterministically);
* a **bounded page buffer with backpressure** — the producer thread flushes
  records into fixed-size pages and blocks once ``max_pending_pages`` pages
  are waiting, so a slow streaming consumer pauses the kernel instead of
  letting the server buffer an unbounded outcome.  Synchronous jobs use an
  unbounded buffer (their consumer is ``wait()``, which needs every page);
* a **live progress view** — the kernel mutates the job's
  :class:`~repro.core.engine.controls.RunReport` in place and only ever
  increments it, so :meth:`Job.progress` snapshots are monotonically
  non-decreasing without any extra synchronisation in the hot loop;
* **cooperative cancellation** — the job owns a
  :class:`~repro.core.engine.controls.CancellationToken` checked by the
  kernel on the run-controls cadence and by the buffer on every append, so
  cancelling a backpressure-blocked producer takes effect immediately and
  truncates at a deterministic record count (``acked + max_pending_pages``
  pages, for page_size-1 buffers).

:class:`JobRegistry` owns the id space and the retention policy: terminal
jobs stay fetchable (status and un-streamed results) until the finished
backlog exceeds ``max_finished``, then the oldest are evicted — which is
why an unknown id maps to :class:`~repro.errors.JobNotFoundError` (HTTP
404), not a protocol error.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Iterator
from time import perf_counter
from typing import Callable, NamedTuple

from ..api.outcome import EnumerationOutcome
from ..api.request import EnumerationRequest
from ..core.engine.controls import (
    CancellationToken,
    ProgressSnapshot,
    RunReport,
    StopReason,
)
from ..core.result import CliqueRecord, SearchStatistics
from ..errors import JobError, JobNotFoundError, ParameterError, ServiceError
from ..obs import registry as _obs_registry

__all__ = [
    "DEFAULT_MAX_PENDING_PAGES",
    "DEFAULT_PAGE_SIZE",
    "Job",
    "JobCancelled",
    "JobChunk",
    "JobRegistry",
    "JobState",
]

#: Records per result page (and therefore per NDJSON chunk).
DEFAULT_PAGE_SIZE = 256

#: Pages a producer may have pending before it blocks (streaming jobs).
DEFAULT_MAX_PENDING_PAGES = 64

#: Terminal jobs retained by a registry before the oldest are evicted.
DEFAULT_MAX_FINISHED = 256

_JOBS_TRANSITIONS = _obs_registry().counter(
    "jobs_transitions_total",
    "Job state-machine transitions by destination state.",
    labelnames=("state",),
)
_JOBS_FIRST_RESULT_SECONDS = _obs_registry().histogram(
    "jobs_time_to_first_result_seconds",
    "Wall seconds from job start to its first flushed result page.",
)
_JOBS_BACKPRESSURE_SECONDS = _obs_registry().histogram(
    "jobs_backpressure_park_seconds",
    "Wall seconds producers spent parked on a full result buffer.",
)


class JobState:
    """Job lifecycle states (string constants, mirroring ``StopReason``)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    ALL = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
    TERMINAL = (DONE, FAILED, CANCELLED)


class JobCancelled(Exception):
    """Internal signal: the producer observed a cancelled token mid-append.

    Never escapes the scheduler's job runner — it only unwinds the
    enumeration loop so the job can settle into its ``cancelled`` state.
    """


class JobChunk(NamedTuple):
    """One element of a job's result stream.

    Non-final chunks carry a page of records; the single final chunk
    carries either the outcome summary (records stripped) or the error
    that failed the job — never both.
    """

    seq: int
    records: tuple[CliqueRecord, ...]
    final: bool
    summary: EnumerationOutcome | None
    error: BaseException | None


class Job:
    """One enumeration's state machine, result buffer and progress view.

    Built by :meth:`JobRegistry.create`; driven by the scheduler's worker
    thread through the underscore-prefixed producer hooks; consumed by
    :meth:`wait` (synchronous await) or :meth:`stream_chunks` (paged
    streaming with cursor resume).
    """

    def __init__(
        self,
        job_id: str,
        request: EnumerationRequest,
        *,
        page_size: int | None = None,
        max_pending_pages: int | None = None,
        on_terminal: Callable[[str], None] | None = None,
    ) -> None:
        page_size = DEFAULT_PAGE_SIZE if page_size is None else page_size
        if page_size < 1:
            raise ParameterError(f"page_size must be positive, got {page_size}")
        if max_pending_pages is not None and max_pending_pages < 1:
            raise ParameterError(
                f"max_pending_pages must be positive, got {max_pending_pages}"
            )
        self.id = job_id
        self.request = request
        self.statistics = SearchStatistics()
        self.report = RunReport()
        self._token = CancellationToken()
        self._cond = threading.Condition()
        self._state = JobState.QUEUED
        self._error: BaseException | None = None
        self._page_size = page_size
        self._max_pending = max_pending_pages
        self._pages: "OrderedDict[int, list[CliqueRecord]]" = OrderedDict()
        self._current: list[CliqueRecord] = []
        self._next_seq = 0
        self._released = 0  # all pages below this seq have been streamed out
        self._records_total = 0
        self._draining = False
        self._started_at: float | None = None
        self._elapsed = 0.0
        self._algorithm = request.label
        self._alpha = request.alpha
        self._on_terminal = on_terminal
        #: The executor future driving this job; set by the scheduler at
        #: dispatch (synchronous callers await it for legacy semantics).
        self.future = None

    # ------------------------------------------------------------------ #
    # Observer surface
    # ------------------------------------------------------------------ #
    @property
    def state(self) -> str:
        with self._cond:
            return self._state

    @property
    def error(self) -> BaseException | None:
        with self._cond:
            return self._error

    @property
    def records_total(self) -> int:
        """Records produced so far (buffer-side truth, ahead of the report)."""
        with self._cond:
            return self._records_total

    @property
    def token(self) -> CancellationToken:
        """The cancellation token the kernel polls for this job."""
        return self._token

    def progress(self) -> ProgressSnapshot:
        """A monotonic snapshot of the live run counters."""
        with self._cond:
            if self._state in JobState.TERMINAL:
                elapsed = self._elapsed
            elif self._started_at is not None:
                elapsed = perf_counter() - self._started_at
            else:
                elapsed = 0.0
            return ProgressSnapshot(
                cliques_emitted=self.report.cliques_emitted,
                frames_expanded=self.report.frames_expanded,
                elapsed_seconds=elapsed,
            )

    # ------------------------------------------------------------------ #
    # Consumer surface
    # ------------------------------------------------------------------ #
    def cancel(self) -> bool:
        """Request cancellation; ``True`` iff the job will end ``cancelled``.

        A ``True`` return is a guarantee: the job's terminal state will be
        ``cancelled`` (with ``stop_reason`` provenance), even if the
        enumeration finishes its last record while the token propagates.
        ``False`` means a terminal state was already reached and stands.
        """
        notify = None
        with self._cond:
            if self._state in JobState.TERMINAL:
                return False
            self._token.cancel()
            if self._state == JobState.QUEUED:
                # Never ran: settle immediately as an empty cancelled
                # outcome (the worker observes ``_begin() == False``).
                self.report.stop_reason = StopReason.CANCELLED
                self._state = JobState.CANCELLED
                _JOBS_TRANSITIONS.labels(state=JobState.CANCELLED).inc()
                notify = self._on_terminal
            self._cond.notify_all()
        if notify is not None:
            notify(JobState.CANCELLED)
        return True

    def wait(self, timeout: float | None = None) -> EnumerationOutcome:
        """Block until terminal; return the assembled outcome or raise.

        Raises the job's error for ``failed`` jobs, and
        :class:`~repro.errors.JobError` if the timeout expires or the
        result pages were already streamed out and released.
        """
        with self._cond:
            if not self._cond.wait_for(
                lambda: self._state in JobState.TERMINAL, timeout
            ):
                raise JobError(
                    f"job {self.id} still {self._state} after {timeout}s"
                )
            if self._state == JobState.FAILED:
                assert self._error is not None
                raise self._error
            return self._assemble_locked()

    def stream_chunks(self, cursor: int = 0) -> Iterator[JobChunk]:
        """Stream result pages from ``cursor``, ending with a final chunk.

        Pages are **released** one step behind delivery: when the consumer
        asks for chunk ``seq + 1``, chunk ``seq`` is known to have been
        fully handed over, its page is dropped and a backpressure-blocked
        producer is woken.  A consumer that dies mid-chunk can therefore
        resume at its last unacknowledged cursor.  Requesting a cursor
        below the released floor raises :class:`~repro.errors.JobError`
        eagerly (before any chunk is produced).
        """
        with self._cond:
            self._check_cursor_locked(cursor)
        return self._stream_chunks(cursor)

    def _stream_chunks(self, cursor: int) -> Iterator[JobChunk]:
        seq = cursor
        while True:
            with self._cond:
                while True:
                    page = self._pages.get(seq)
                    if page is not None:
                        break
                    self._check_cursor_locked(seq)
                    if self._state in JobState.TERMINAL and seq >= self._next_seq:
                        break
                    self._cond.wait()
                if page is None:
                    if self._state == JobState.FAILED:
                        summary, error = None, self._error
                    else:
                        summary, error = self._summary_locked(), None
            if page is None:
                yield JobChunk(
                    seq=seq, records=(), final=True, summary=summary, error=error
                )
                return
            yield JobChunk(
                seq=seq,
                records=tuple(page),
                final=False,
                summary=None,
                error=None,
            )
            # Resumed: the previous chunk was fully delivered — ack it.
            self._release(seq)
            seq += 1

    # ------------------------------------------------------------------ #
    # Producer surface (scheduler worker thread)
    # ------------------------------------------------------------------ #
    def _begin(self) -> bool:
        """queued → running; ``False`` when the job was settled while queued."""
        with self._cond:
            if self._state != JobState.QUEUED:
                return False
            self._state = JobState.RUNNING
            self._started_at = perf_counter()
            _JOBS_TRANSITIONS.labels(state=JobState.RUNNING).inc()
            self._cond.notify_all()
        return True

    def _append(self, record: CliqueRecord) -> None:
        """Buffer one record, flushing pages and honouring backpressure.

        Raises :class:`JobCancelled` the moment the token is cancelled —
        including while blocked on a full buffer — and
        :class:`~repro.errors.ServiceError` when the server drains under a
        blocked producer (the job then settles as ``failed``).
        """
        with self._cond:
            if self._token.cancelled:
                raise JobCancelled
            self._current.append(record)
            self._records_total += 1
            if len(self._current) >= self._page_size:
                self._flush_locked()
                parked_at: "float | None" = None
                try:
                    while (
                        self._max_pending is not None
                        and len(self._pages) >= self._max_pending
                    ):
                        if self._token.cancelled:
                            raise JobCancelled
                        if self._draining:
                            raise ServiceError("server shutdown")
                        if parked_at is None:
                            parked_at = perf_counter()
                        self._cond.wait()
                finally:
                    if parked_at is not None:
                        _JOBS_BACKPRESSURE_SECONDS.observe(
                            perf_counter() - parked_at
                        )

    def _finish(self) -> None:
        """running → done (or cancelled, when the token was accepted)."""
        with self._cond:
            self._flush_locked()
            if self._started_at is not None:
                self._elapsed = perf_counter() - self._started_at
            # Reconcile the counter lag of an abandoned generator: kernels
            # increment ``cliques_emitted`` when resumed *after* a yield,
            # so abandoning at a yield leaves the report one short.
            self.report.cliques_emitted = self._records_total
            if self._token.cancelled:
                self.report.stop_reason = StopReason.CANCELLED
                state = JobState.CANCELLED
            else:
                state = JobState.DONE
            self._state = state
            _JOBS_TRANSITIONS.labels(state=state).inc()
            self._cond.notify_all()
            notify = self._on_terminal
        if notify is not None:
            notify(state)

    def _adopt(self, outcome: EnumerationOutcome) -> None:
        """Finish a buffered (non-streamable) run from its whole outcome.

        Used for ``top_k`` (ranked output ≠ stream order) and parallel
        requests: the materialised records are paged for streaming
        consumers and the outcome's own counters/labels become the job's.
        """
        with self._cond:
            for record in outcome.records:
                self._current.append(record)
                self._records_total += 1
                if len(self._current) >= self._page_size:
                    self._flush_locked()
            self._flush_locked()
            self.statistics = outcome.statistics
            self.report = outcome.report
            self._algorithm = outcome.algorithm
            self._alpha = outcome.alpha
            self._elapsed = outcome.elapsed_seconds
            if self._token.cancelled:
                self.report.stop_reason = StopReason.CANCELLED
                state = JobState.CANCELLED
            else:
                state = JobState.DONE
            self._state = state
            _JOBS_TRANSITIONS.labels(state=state).inc()
            self._cond.notify_all()
            notify = self._on_terminal
        if notify is not None:
            notify(state)

    def _fail(self, error: BaseException) -> bool:
        """Transition to failed unless already terminal; ``True`` on change."""
        with self._cond:
            if self._state in JobState.TERMINAL:
                return False
            self._flush_locked()
            if self._started_at is not None:
                self._elapsed = perf_counter() - self._started_at
            self._error = error
            self._state = JobState.FAILED
            _JOBS_TRANSITIONS.labels(state=JobState.FAILED).inc()
            self._cond.notify_all()
            notify = self._on_terminal
        if notify is not None:
            notify(JobState.FAILED)
        return True

    def _shutdown(self) -> None:
        """Drain-mode nudge: fail queued jobs, unblock stalled producers.

        Running jobs whose producer is not blocked are left alone to
        finish; a producer blocked on a full buffer (its consumer is gone)
        wakes up and fails with ``ServiceError("server shutdown")``.
        """
        notify = None
        with self._cond:
            if self._state == JobState.QUEUED:
                self._error = ServiceError("server shutdown")
                self._state = JobState.FAILED
                _JOBS_TRANSITIONS.labels(state=JobState.FAILED).inc()
                notify = self._on_terminal
            elif self._state == JobState.RUNNING:
                self._draining = True
            else:
                # Terminal (done/failed/cancelled): the outcome stands;
                # the notify_all below still wakes any parked consumer.
                pass
            self._cond.notify_all()
        if notify is not None:
            notify(JobState.FAILED)

    # ------------------------------------------------------------------ #
    # Internals (all called with the condition held)
    # ------------------------------------------------------------------ #
    def _flush_locked(self) -> None:
        if self._current:
            if self._next_seq == 0 and self._started_at is not None:
                _JOBS_FIRST_RESULT_SECONDS.observe(
                    perf_counter() - self._started_at
                )
            self._pages[self._next_seq] = self._current
            self._next_seq += 1
            self._current = []
            self._cond.notify_all()

    def _release(self, seq: int) -> None:
        with self._cond:
            if self._pages.pop(seq, None) is not None:
                self._released = max(self._released, seq + 1)
                self._cond.notify_all()

    def _check_cursor_locked(self, cursor: int) -> None:
        if cursor < 0:
            raise JobError(f"cursor must be non-negative, got {cursor}")
        if cursor < self._released:
            raise JobError(
                f"cursor {cursor} precedes the released floor "
                f"{self._released} of job {self.id}; streamed pages are "
                f"discarded once acknowledged"
            )

    def _summary_locked(self) -> EnumerationOutcome:
        return EnumerationOutcome(
            algorithm=self._algorithm,
            alpha=self._alpha,
            records=[],
            statistics=self.statistics,
            report=self.report,
            elapsed_seconds=self._elapsed,
            request=self.request,
        )

    def _assemble_locked(self) -> EnumerationOutcome:
        if self._released:
            raise JobError(
                f"job {self.id} streamed and released its first "
                f"{self._released} page(s); reassemble from the stream "
                f"instead of wait()"
            )
        records: list[CliqueRecord] = []
        for page in self._pages.values():
            records.extend(page)
        outcome = self._summary_locked()
        outcome.records = records
        return outcome

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Job(id={self.id!r}, state={self.state!r}, "
            f"records={self.records_total})"
        )


class JobRegistry:
    """Id space, lookup and retention policy for :class:`Job` instances.

    Thread-safe.  Terminal-state counters are cumulative (eviction never
    decrements them), so ``counts()`` doubles as the completion-mix view
    ``/v1/stats`` exposes.
    """

    def __init__(self, *, max_finished: int = DEFAULT_MAX_FINISHED) -> None:
        if max_finished < 1:
            raise ParameterError(
                f"max_finished must be positive, got {max_finished}"
            )
        self._lock = threading.Lock()
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._counter = 0
        self._max_finished = max_finished
        self._terminal = {
            JobState.DONE: 0,
            JobState.FAILED: 0,
            JobState.CANCELLED: 0,
        }

    def create(
        self,
        request: EnumerationRequest,
        *,
        page_size: int | None = None,
        max_pending_pages: int | None = None,
    ) -> Job:
        with self._lock:
            self._counter += 1
            job_id = f"job-{self._counter:06d}"
            job = Job(
                job_id,
                request,
                page_size=page_size,
                max_pending_pages=max_pending_pages,
                on_terminal=self._note_terminal,
            )
            self._jobs[job_id] = job
        return job

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(f"no such job: {job_id!r}")
        return job

    def list(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    def drain(self) -> None:
        """Shutdown sweep: fail queued jobs, unblock stalled producers."""
        for job in self.list():
            job._shutdown()

    def counts(self) -> dict[str, int]:
        """Per-state job counts (live states exact, terminal cumulative)."""
        jobs = self.list()
        queued = sum(1 for job in jobs if job.state == JobState.QUEUED)
        running = sum(1 for job in jobs if job.state == JobState.RUNNING)
        with self._lock:
            return {
                JobState.QUEUED: queued,
                JobState.RUNNING: running,
                **self._terminal,
            }

    def _note_terminal(self, state: str) -> None:
        with self._lock:
            self._terminal[state] += 1
            finished = [
                job_id
                for job_id, job in self._jobs.items()
                if job._state in JobState.TERMINAL
            ]
            excess = len(finished) - self._max_finished
            for job_id in finished[: max(excess, 0)]:
                del self._jobs[job_id]

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)
