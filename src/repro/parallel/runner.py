"""Sharded parallel enumeration of α-maximal cliques.

:func:`parallel_mule` compiles the graph **once**, splits the root candidate
set into balanced shards (:class:`~repro.parallel.planner.ShardPlanner`),
runs one MULE search per shard — across a ``ProcessPoolExecutor`` when real
parallelism is available, sequentially in-process otherwise — and merges the
per-shard emissions, :class:`~repro.core.result.SearchStatistics` and
:class:`~repro.core.engine.controls.RunReport` objects into one
:class:`~repro.core.result.EnumerationResult`.

Correctness rests on the shard semantics of
:meth:`CompiledGraph.restrict_roots`: shards own disjoint root subtrees,
every α-maximal clique is emitted by exactly one shard (the one owning its
smallest vertex), and the merged clique set — probabilities included — is
**bit-identical** to serial :func:`repro.core.mule.mule` whenever no run
control truncates a shard.

Run-control semantics under sharding:

* ``time_budget_seconds`` is a *global* wall-clock budget: the parent
  computes an absolute deadline before dispatch and every shard receives
  only the time remaining when it actually starts, so queued shards cannot
  stretch the total run far past the budget (the overrun stays bounded by
  one ``check_every_frames`` window per in-flight shard).
* ``max_cliques`` bounds the merged output size: each shard is individually
  capped, then the merged, sorted records are trimmed to the cap.  Unlike
  the serial enumerator the retained subset is the *sorted* prefix, not the
  depth-first prefix — shards finish in nondeterministic order, so a DFS
  prefix is not meaningful across them.  ``stop_reason`` still reports the
  truncation.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_all_start_methods, get_context
from time import monotonic
from typing import NamedTuple

from ..core.engine.backends import run_kernel_search
from ..core.engine.compiled import CompiledGraph
from ..core.engine.controls import RunControls, RunReport, StopReason
from ..core.engine.strategies import MuleStrategy
from ..core.mule import MuleConfig
from ..core.result import CliqueRecord, EnumerationResult, SearchStatistics
from ..errors import ParameterError
from ..uncertain.graph import UncertainGraph, validate_probability
from .planner import Shard, ShardPlanner

__all__ = [
    "ShardOutcome",
    "parallel_enumerate",
    "parallel_mule",
    "run_shards",
    "default_workers",
]

#: Oversubscription factor: shards per worker.  More shards than workers lets
#: the pool rebalance when subtree costs defy the planner's degree estimate.
_SHARDS_PER_WORKER = 4


class ShardOutcome(NamedTuple):
    """What one shard produced: its emissions, counters and stop report."""

    shard: Shard
    pairs: list[tuple[frozenset, float]]
    statistics: SearchStatistics
    report: RunReport


def default_workers() -> int:
    """Default worker count: the CPUs this process may actually use.

    ``sched_getaffinity`` respects container/cgroup pinning (a pool sized
    by raw ``cpu_count`` would oversubscribe a 2-of-64-core cpuset);
    platforms without it fall back to ``cpu_count``.  Always at least 1.
    """
    try:
        usable = len(os.sched_getaffinity(0))
    except AttributeError:
        usable = os.cpu_count() or 1
    return max(1, usable)


def _enumerate_shard(
    compiled: CompiledGraph,
    alpha: float,
    shard: Shard,
    max_cliques: int | None,
    deadline: float | None,
    check_every: int,
    kernel: str = "auto",
) -> ShardOutcome:
    """Run one shard to completion (or until its run controls stop it)."""
    time_budget = None
    if deadline is not None:
        # The deadline is absolute (time.monotonic in the parent); convert
        # to the time remaining *now* so late-starting shards get less.
        time_budget = max(0.0, deadline - monotonic())
    controls = RunControls(
        max_cliques=max_cliques,
        time_budget_seconds=time_budget,
        check_every_frames=check_every,
    )
    statistics = SearchStatistics()
    report = RunReport()
    restricted = compiled.restrict_roots(shard.root_mask)
    pairs = list(
        run_kernel_search(
            restricted,
            alpha,
            MuleStrategy(),
            kernel=kernel,
            statistics=statistics,
            controls=controls,
            report=report,
        )
    )
    return ShardOutcome(shard, pairs, statistics, report)


# ----------------------------------------------------------------------- #
# Process-pool plumbing.  The compiled graph is shipped once per worker via
# the pool initializer (not once per shard task), so the per-task payload is
# just the shard and the scalar controls.
# ----------------------------------------------------------------------- #
_WORKER_STATE: tuple[CompiledGraph, float, int, str] | None = None


def _worker_initializer(
    compiled: CompiledGraph, alpha: float, check_every: int, kernel: str
) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (compiled, alpha, check_every, kernel)


def _worker_run_shard(
    task: tuple[Shard, int | None, float | None],
) -> ShardOutcome:
    shard, max_cliques, deadline = task
    assert _WORKER_STATE is not None, "worker used before initialization"
    compiled, alpha, check_every, kernel = _WORKER_STATE
    return _enumerate_shard(
        compiled, alpha, shard, max_cliques, deadline, check_every, kernel
    )


def _process_backend_available() -> bool:
    """True when a fork-based process pool can be used on this platform.

    ``fork`` shares the parent's memory pages, making worker start-up cheap
    and sidestepping import-order issues; on platforms without it (Windows,
    and macOS's default since 3.8 is spawn) the runner falls back to the
    in-process sequential path rather than paying spawn's per-worker
    interpreter boot on every call.
    """
    return "fork" in get_all_start_methods()


def run_shards(
    compiled: CompiledGraph,
    alpha: float,
    shards: list[Shard],
    *,
    workers: int,
    controls: RunControls | None = None,
    backend: str = "auto",
    kernel: str = "auto",
) -> list[ShardOutcome]:
    """Execute ``shards`` and return their outcomes in shard order.

    Parameters
    ----------
    compiled:
        The compiled graph (shared by every shard; never copied per shard —
        the process backend ships it once per worker).
    alpha:
        The probability threshold, already validated.
    shards:
        The plan from :class:`~repro.parallel.planner.ShardPlanner`.
    workers:
        Process-pool size.  ``1`` always runs in-process.
    controls:
        Optional global run controls (see the module docstring for their
        sharded semantics).
    backend:
        ``"auto"`` (processes when ``workers > 1`` and fork is available),
        ``"process"`` (force the pool; raises
        :class:`~repro.errors.ParameterError` on fork-less platforms), or
        ``"inline"`` (sequential, in-process — deterministic and cheap,
        used by the property tests).
    kernel:
        Engine kernel each shard's inner loop runs on (``"auto"`` /
        ``"python"`` / ``"vector"``); orthogonal to ``backend``, which
        picks where the shards run.  Forwarded to
        :func:`repro.core.engine.backends.run_kernel_search`.
    """
    if backend not in ("auto", "process", "inline"):
        raise ParameterError(f"unknown backend {backend!r}")
    if backend == "process" and not _process_backend_available():
        # Refuse rather than silently degrade to a spawn pool (a fresh
        # interpreter boot per worker); "auto" picks the sensible fallback.
        raise ParameterError(
            "backend='process' requires the fork start method; "
            "use backend='auto' or 'inline' on this platform"
        )
    controls = controls or RunControls()
    deadline = (
        monotonic() + controls.time_budget_seconds
        if controls.time_budget_seconds is not None
        else None
    )
    max_cliques = controls.max_cliques
    check_every = controls.check_every_frames

    use_processes = backend == "process" or (
        backend == "auto" and workers > 1 and _process_backend_available()
    )
    if not use_processes or len(shards) <= 1:
        return [
            _enumerate_shard(
                compiled, alpha, shard, max_cliques, deadline, check_every, kernel
            )
            for shard in shards
        ]

    context = get_context("fork")
    tasks = [(shard, max_cliques, deadline) for shard in shards]
    with ProcessPoolExecutor(
        max_workers=min(workers, len(shards)),
        mp_context=context,
        initializer=_worker_initializer,
        initargs=(compiled, alpha, check_every, kernel),
    ) as pool:
        # Executor.map preserves task order, so the merge is deterministic
        # regardless of which shard finishes first.
        return list(pool.map(_worker_run_shard, tasks))


def parallel_enumerate(
    compiled: CompiledGraph,
    alpha: float,
    *,
    workers: int,
    controls: RunControls | None = None,
    num_shards: int | None = None,
    backend: str = "auto",
    kernel: str = "auto",
) -> tuple[list[CliqueRecord], SearchStatistics, str]:
    """Run the shard/merge pipeline over an already-compiled graph.

    This is the compile-free core of :func:`parallel_mule`, used by the
    session API (:class:`repro.api.MiningSession`) so the sharded path runs
    over the session's cached artifact.  Returns the merged records,
    component-wise-summed statistics and the merged stop reason; the merge
    semantics (global deadline, sorted ``max_cliques`` trim, truncation
    precedence) are documented on the module.
    """
    statistics = SearchStatistics()
    records: list[CliqueRecord] = []
    if num_shards is None:
        num_shards = workers * _SHARDS_PER_WORKER if workers > 1 else 1
    shards = ShardPlanner(num_shards).plan(compiled)
    outcomes = run_shards(
        compiled,
        alpha,
        shards,
        workers=workers,
        controls=controls,
        backend=backend,
        kernel=kernel,
    )
    for outcome in outcomes:
        statistics = statistics.merge(outcome.statistics)
        records.extend(
            CliqueRecord(vertices=members, probability=probability)
            for members, probability in outcome.pairs
        )
    stop_reason = _merge_stop_reasons(
        outcome.report.stop_reason for outcome in outcomes
    )
    max_cliques = controls.max_cliques if controls is not None else None
    if max_cliques is not None and len(records) > max_cliques:
        records = sorted(records)[:max_cliques]
        # The trim makes the cap binding, but cancellation or a blown
        # deadline anywhere still outranks it under the merge precedence.
        stop_reason = _strongest(stop_reason, StopReason.MAX_CLIQUES)
    return records, statistics, stop_reason


def parallel_mule(
    graph: UncertainGraph,
    alpha: float,
    *,
    workers: int | None = None,
    controls: RunControls | None = None,
    config: MuleConfig | None = None,
    num_shards: int | None = None,
    backend: str = "auto",
    kernel: str = "auto",
    compiled: CompiledGraph | None = None,
) -> EnumerationResult:
    """Enumerate all α-maximal cliques with sharded parallel MULE.

    The clique set (and every probability, bit for bit) is identical to
    serial :func:`repro.core.mule.mule` whenever no run control truncates
    the enumeration; only the recorded ``algorithm`` label and the division
    of the search across OS processes differ.

    Since the session-API refactor this is a thin delegate over
    :class:`repro.api.MiningSession`: the session owns compilation and
    caching, and the shard/merge pipeline (:func:`parallel_enumerate`) runs
    over its artifact.

    Parameters
    ----------
    graph:
        The uncertain graph.
    alpha:
        The probability threshold ``0 < α ≤ 1``.
    workers:
        Number of worker processes (default: the machine's CPU count).
        ``workers=1`` — and any platform without ``fork`` — runs the shards
        sequentially in-process; the result is identical either way.
    controls:
        Optional :class:`~repro.core.engine.controls.RunControls`; see the
        module docstring for how each limit behaves under sharding.
    config:
        Optional :class:`~repro.core.mule.MuleConfig` (preprocessing knobs).
    num_shards:
        Override the shard count (default ``workers × 4``, capped at the
        number of vertices); the output does not depend on it.
    backend:
        Execution backend passed through to :func:`run_shards`.
    kernel:
        Engine kernel each shard runs on (``"auto"`` / ``"python"`` /
        ``"vector"``); independent of ``backend``.  Either way the
        results are bit-identical.
    compiled:
        Optional precompiled graph.  Must have been produced by
        ``compile_graph(graph, alpha=alpha if config.prune_edges else None)``
        (the caller vouches for the match); when given, no compilation
        happens here at all — the artifact is adopted by the session and
        shipped to the shard workers as-is.

    Examples
    --------
    >>> g = UncertainGraph(edges=[(1, 2, 0.9), (2, 3, 0.9), (1, 3, 0.9)])
    >>> sorted(sorted(r.vertices) for r in parallel_mule(g, 0.5, workers=2))
    [[1, 2, 3]]
    """
    # The api layer builds on this module's pipeline, so import it lazily.
    from ..api.request import EnumerationRequest
    from ..api.session import MiningSession

    alpha = validate_probability(alpha, what="alpha")
    if workers is None:
        workers = default_workers()
    if workers < 1:
        raise ParameterError(f"workers must be positive, got {workers}")
    config = config or MuleConfig()

    session = MiningSession(graph)
    if compiled is not None:
        session.adopt(compiled, alpha=alpha if config.prune_edges else None)
    request = EnumerationRequest(
        algorithm="mule",
        alpha=alpha,
        prune_edges=config.prune_edges,
        controls=controls,
        workers=workers,
        num_shards=num_shards,
        backend=backend,
        kernel=kernel,
        # Force the shard/merge path so workers=1 keeps the parallel-mule
        # label and merge semantics it has always had.
        execution="parallel",
    )
    return session.enumerate(request).to_result()


#: Merge precedence, strongest first: cancellation is a caller decision
#: and outranks everything; ``time-budget`` wins over ``max-cliques``
#: because a run that ran out of time anywhere cannot claim its output
#: is the full cap-bounded set; ``completed`` only survives when every
#: shard completed.  Listing every member keeps the merge total — a new
#: StopReason cannot silently collapse to ``completed``
#: (``repro-mule check`` pins this against the StopReason vocabulary).
_STOP_PRECEDENCE = (
    StopReason.CANCELLED,
    StopReason.TIME_BUDGET,
    StopReason.MAX_CLIQUES,
    StopReason.COMPLETED,
)


def _strongest(*reasons: str) -> str:
    """The highest-precedence reason among ``reasons``."""
    return min(
        reasons,
        key=lambda reason: (
            _STOP_PRECEDENCE.index(reason)
            if reason in _STOP_PRECEDENCE
            else -1  # unknown reasons are preserved, never downgraded
        ),
    )


def _merge_stop_reasons(reasons) -> str:
    """Combine per-shard stop reasons: any truncation marks the whole run."""
    merged = StopReason.COMPLETED
    for reason in reasons:
        merged = _strongest(merged, reason)
    return merged
