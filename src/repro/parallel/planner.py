"""Shard planning: split a compiled graph's root candidates into balanced shards.

The depth-first tree of Algorithm 2 has one root-level subtree per vertex,
and those subtrees are fully independent: the subtree rooted at ``v``
enumerates exactly the α-maximal cliques whose smallest vertex is ``v``.
Partitioning the root candidate set therefore partitions the *output*, which
is what makes parallel enumeration embarrassingly simple — as long as the
shards are balanced.

Balance is the hard part.  The subtree at ``v`` explores subsets of ``v``'s
*higher* neighborhood (``GenerateI`` keeps only candidates above the branch
vertex), so a hub vertex with many higher neighbors can carry orders of
magnitude more work than a leaf.  :class:`ShardPlanner` therefore weights
each root by ``1 + |N(v) ∩ {w : w > v}|`` and assigns roots with the classic
LPT (longest-processing-time) greedy: heaviest first, each into the
currently lightest shard.  Hubs land in different shards before the light
roots even out the remainder, so no single shard inherits all the hot
subtrees.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..core.engine.compiled import CompiledGraph
from ..core.engine.strategies import bit_list
from ..errors import ParameterError

__all__ = ["Shard", "ShardPlanner", "plan_shards"]


@dataclass(frozen=True)
class Shard:
    """One unit of parallel work: a subset of root-level branches.

    Attributes
    ----------
    index:
        Position of the shard in the plan (0-based, deterministic).
    root_mask:
        Bitmask of the first-branch vertices this shard owns; pass it to
        :meth:`~repro.core.engine.compiled.CompiledGraph.restrict_roots`.
    roots:
        The owned vertex indices in ascending order (``bit_list(root_mask)``).
    weight:
        The planner's estimated cost of the shard (sum of per-root weights).
    """

    index: int
    root_mask: int
    roots: tuple[int, ...]
    weight: int

    def __len__(self) -> int:
        return len(self.roots)


class ShardPlanner:
    """Split the root candidate set of a compiled graph into balanced shards.

    Parameters
    ----------
    num_shards:
        Desired number of shards.  The plan never produces empty shards: a
        graph with fewer roots than ``num_shards`` yields one shard per root.
    """

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ParameterError(f"num_shards must be positive, got {num_shards}")
        self.num_shards = num_shards

    def root_weight(self, compiled: CompiledGraph, v: int) -> int:
        """Estimated cost of the subtree rooted at ``v``.

        ``1 + |higher neighborhood|``: the subtree explores subsets of the
        neighbors of ``v`` above ``v``, so its size grows with that degree;
        the ``+ 1`` accounts for visiting the root branch itself (isolated
        vertices still cost one node).
        """
        return 1 + (compiled.adjacency_mask[v] & compiled.higher_masks[v]).bit_count()

    def plan(self, compiled: CompiledGraph) -> list[Shard]:
        """Partition ``compiled.root_mask`` into up to ``num_shards`` shards.

        The partition is exact (masks are disjoint, their union is the input
        root mask) and deterministic: ties in the LPT greedy break by vertex
        index and shard index.

        >>> from repro.uncertain.graph import UncertainGraph
        >>> from repro.core.engine import compile_graph
        >>> g = UncertainGraph(edges=[(1, 2, 0.9), (1, 3, 0.9), (1, 4, 0.9)])
        >>> shards = ShardPlanner(2).plan(compile_graph(g))
        >>> [shard.roots for shard in shards]
        [(0,), (1, 2, 3)]
        """
        roots = bit_list(compiled.root_mask)
        if not roots:
            return []
        weights = {v: self.root_weight(compiled, v) for v in roots}
        # LPT greedy: heaviest roots first (ties by vertex index for
        # determinism), each into the currently lightest shard.
        order = sorted(roots, key=lambda v: (-weights[v], v))
        count = min(self.num_shards, len(roots))
        heap = [(0, index) for index in range(count)]
        masks = [0] * count
        loads = [0] * count
        for v in order:
            load, index = heapq.heappop(heap)
            masks[index] |= 1 << v
            loads[index] = load + weights[v]
            heapq.heappush(heap, (loads[index], index))
        return [
            Shard(
                index=index,
                root_mask=masks[index],
                roots=tuple(bit_list(masks[index])),
                weight=loads[index],
            )
            for index in range(count)
        ]


def plan_shards(compiled: CompiledGraph, num_shards: int) -> list[Shard]:
    """Convenience wrapper: ``ShardPlanner(num_shards).plan(compiled)``."""
    return ShardPlanner(num_shards).plan(compiled)
