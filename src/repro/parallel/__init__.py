"""Sharded parallel enumeration — the first layer of the scale-out story.

The root-level subtrees of the paper's depth-first search are fully
independent, so enumeration parallelises by *sharding the root candidate
set*:

* :mod:`repro.parallel.planner` — :class:`ShardPlanner` splits the roots
  into balanced shards (degree-weighted LPT, so hub vertices spread across
  shards instead of piling into one);
* :mod:`repro.parallel.runner` — :func:`parallel_mule` executes the shards
  over a ``ProcessPoolExecutor`` (in-process sequential fallback for
  ``workers=1`` and fork-less platforms), merges statistics and reports,
  and returns an :class:`~repro.core.result.EnumerationResult` whose clique
  set is bit-identical to serial :func:`repro.core.mule.mule`.

The sharding primitive itself lives in the engine
(:meth:`~repro.core.engine.compiled.CompiledGraph.restrict_roots`); this
package only plans and drives it.
"""

from .planner import Shard, ShardPlanner, plan_shards
from .runner import (
    ShardOutcome,
    default_workers,
    parallel_enumerate,
    parallel_mule,
    run_shards,
)

__all__ = [
    "Shard",
    "ShardPlanner",
    "plan_shards",
    "ShardOutcome",
    "default_workers",
    "parallel_enumerate",
    "parallel_mule",
    "run_shards",
]
