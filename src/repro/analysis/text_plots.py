"""Plain-text plotting for the reproduction figures.

The paper's evaluation is presented as line plots (runtime vs α, output vs
threshold, ...).  This module renders the same series as ASCII charts so
the benchmark harness and the examples can show figure-shaped output in a
terminal or a text log without any plotting dependency.

Two primitives are provided:

* :func:`ascii_line_chart` — multi-series scatter/line chart on a character
  grid, with optional logarithmic axes (the paper's figures use log-scale x
  axes for α and log-scale y axes for counts);
* :func:`ascii_bar_chart` — horizontal bars, used for the Figure 1 style
  grouped runtime comparison.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

__all__ = ["ascii_line_chart", "ascii_bar_chart"]

#: Characters used to draw successive series in a line chart.
_SERIES_MARKERS = "ox+*#@%&"


def _transform(value: float, log: bool) -> float:
    if log:
        return math.log10(max(value, 1e-12))
    return value


def ascii_line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 64,
    height: int = 18,
    log_x: bool = False,
    log_y: bool = False,
    x_label: str = "x",
    y_label: str = "y",
    title: str = "",
) -> str:
    """Render one or more ``(x, y)`` series as an ASCII chart.

    Parameters
    ----------
    series:
        Mapping from series name to a sequence of ``(x, y)`` points.
    width, height:
        Size of the plotting area in characters.
    log_x, log_y:
        Use a base-10 logarithmic axis (non-positive values are clamped).
    x_label, y_label, title:
        Axis labels and chart title.

    Returns
    -------
    str
        A multi-line string: title, plot grid with a y-axis, an x-axis line
        and a legend mapping marker characters to series names.

    >>> chart = ascii_line_chart({"demo": [(1, 1), (2, 4), (3, 9)]}, width=20, height=5)
    >>> "demo" in chart
    True
    """
    if width < 10 or height < 3:
        raise ValueError("chart area too small; need width >= 10 and height >= 3")
    points = [
        (_transform(x, log_x), _transform(y, log_y))
        for values in series.values()
        for x, y in values
    ]
    if not points:
        return f"{title}\n(no data)"

    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    min_x, max_x = min(xs), max(xs)
    min_y, max_y = min(ys), max(ys)
    span_x = (max_x - min_x) or 1.0
    span_y = (max_y - min_y) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for marker, (name, values) in zip(_SERIES_MARKERS * 10, series.items()):
        for x, y in values:
            tx = (_transform(x, log_x) - min_x) / span_x
            ty = (_transform(y, log_y) - min_y) / span_y
            column = min(width - 1, int(round(tx * (width - 1))))
            row = height - 1 - min(height - 1, int(round(ty * (height - 1))))
            grid[row][column] = marker

    def axis_value(transformed: float, log: bool) -> float:
        return 10**transformed if log else transformed

    lines: list[str] = []
    if title:
        lines.append(title)
    top_label = f"{axis_value(max_y, log_y):.4g}"
    bottom_label = f"{axis_value(min_y, log_y):.4g}"
    label_width = max(len(top_label), len(bottom_label), len(y_label)) + 1
    lines.append(f"{y_label.rjust(label_width)} ")
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(label_width)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(f"{' ' * label_width} +{'-' * width}")
    left = f"{axis_value(min_x, log_x):.4g}"
    right = f"{axis_value(max_x, log_x):.4g}"
    middle = x_label.center(width - len(left) - len(right))
    lines.append(f"{' ' * label_width}  {left}{middle}{right}")
    legend = "   ".join(
        f"{marker} = {name}"
        for marker, (name, _) in zip(_SERIES_MARKERS * 10, series.items())
    )
    lines.append(f"{' ' * label_width}  {legend}")
    return "\n".join(lines)


def ascii_bar_chart(
    values: Mapping[str, float],
    *,
    width: int = 50,
    title: str = "",
    unit: str = "",
) -> str:
    """Render a mapping label → value as horizontal ASCII bars.

    Bars are scaled to the maximum value; each row shows the label, the bar
    and the numeric value.

    >>> print(ascii_bar_chart({"a": 2.0, "b": 4.0}, width=10))  # doctest: +SKIP
    """
    if not values:
        return f"{title}\n(no data)"
    longest_label = max(len(str(label)) for label in values)
    peak = max(values.values()) or 1.0
    lines = [title] if title else []
    for label, value in values.items():
        bar = "#" * max(1, int(round(width * value / peak))) if value > 0 else ""
        lines.append(
            f"{str(label).rjust(longest_label)} | {bar.ljust(width)} {value:.4g}{unit}"
        )
    return "\n".join(lines)
