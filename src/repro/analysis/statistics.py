"""Descriptive statistics over enumeration output.

Turns an :class:`~repro.core.result.EnumerationResult` into the aggregate
numbers reported in the paper's evaluation: output sizes, clique-size
distributions, probability distributions, and per-vertex participation
counts (useful for the community-detection and protein-complex examples).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Hashable
from dataclasses import dataclass

from ..core.result import EnumerationResult

__all__ = ["CliqueStatistics", "clique_statistics", "vertex_participation"]

Vertex = Hashable


@dataclass(frozen=True)
class CliqueStatistics:
    """Aggregate description of an enumeration output."""

    num_cliques: int
    min_size: int
    max_size: int
    mean_size: float
    size_histogram: dict[int, int]
    min_probability: float
    max_probability: float
    mean_probability: float

    def as_dict(self) -> dict[str, object]:
        """Return a flat dict for tabular reporting."""
        return {
            "num_cliques": self.num_cliques,
            "min_size": self.min_size,
            "max_size": self.max_size,
            "mean_size": round(self.mean_size, 3),
            "min_probability": round(self.min_probability, 6),
            "max_probability": round(self.max_probability, 6),
            "mean_probability": round(self.mean_probability, 6),
        }


def clique_statistics(result: EnumerationResult) -> CliqueStatistics:
    """Compute :class:`CliqueStatistics` for an enumeration result.

    An empty result produces zeros across the board.
    """
    if not result.cliques:
        return CliqueStatistics(
            num_cliques=0,
            min_size=0,
            max_size=0,
            mean_size=0.0,
            size_histogram={},
            min_probability=0.0,
            max_probability=0.0,
            mean_probability=0.0,
        )
    sizes = [record.size for record in result.cliques]
    probabilities = [record.probability for record in result.cliques]
    return CliqueStatistics(
        num_cliques=len(result.cliques),
        min_size=min(sizes),
        max_size=max(sizes),
        mean_size=sum(sizes) / len(sizes),
        size_histogram=result.size_histogram(),
        min_probability=min(probabilities),
        max_probability=max(probabilities),
        mean_probability=sum(probabilities) / len(probabilities),
    )


def vertex_participation(result: EnumerationResult) -> dict[Vertex, int]:
    """Return how many α-maximal cliques each vertex belongs to.

    Vertices participating in many maximal cliques are "overlapping
    community members" in the social-network reading of the paper, or
    promiscuous proteins in the PPI reading.
    """
    counts: Counter = Counter()
    for record in result.cliques:
        counts.update(record.vertices)
    return dict(counts)
