"""Cross-validation of enumeration results.

The functions here are the library's internal referee: they re-check
enumerator output against the definitions and against independent
implementations.  They back the integration tests and are also exposed so a
downstream user can assert correctness on their own data (cheap checks) or
on a sample of it (expensive checks).
"""

from __future__ import annotations

from collections.abc import Hashable

from ..core.bounds import is_non_redundant_family, uncertain_clique_bound
from ..core.brute_force import is_alpha_maximal_clique
from ..core.result import EnumerationResult
from ..deterministic.bron_kerbosch import enumerate_maximal_cliques
from ..uncertain.graph import UncertainGraph

__all__ = [
    "verify_result",
    "results_agree",
    "matches_deterministic_cliques",
    "check_output_bound",
]

Vertex = Hashable


def verify_result(
    graph: UncertainGraph, result: EnumerationResult, *, alpha: float | None = None
) -> list[str]:
    """Check an enumeration result against Definition 4 and return violations.

    An empty list means the output passed all checks:

    * no duplicate cliques;
    * every emitted set is an α-clique with the recorded probability;
    * every emitted set is α-maximal (no single-vertex extension survives);
    * the collection is non-redundant (an antichain under inclusion);
    * the output size respects the Theorem 1 bound.

    The check runs in ``O(output · n · max_clique_size)`` time, so it is
    intended for tests and spot checks rather than production pipelines.
    """
    alpha = alpha if alpha is not None else result.alpha
    problems: list[str] = []

    seen = result.vertex_sets()
    if len(seen) != len(result.cliques):
        problems.append("output contains duplicate cliques")

    for record in result.cliques:
        exact = graph.clique_probability(record.vertices)
        if exact < alpha:
            problems.append(
                f"{sorted(record.vertices, key=repr)} has probability {exact} < alpha"
            )
        if abs(exact - record.probability) > 1e-6 * max(1.0, exact):
            problems.append(
                f"{sorted(record.vertices, key=repr)} recorded probability "
                f"{record.probability} differs from exact {exact}"
            )
        if not is_alpha_maximal_clique(graph, record.vertices, alpha):
            problems.append(f"{sorted(record.vertices, key=repr)} is not alpha-maximal")

    if not is_non_redundant_family(seen):
        problems.append("output is not an antichain (Definition 6 violated)")

    bound_alpha = alpha if alpha < 1.0 else 1.0
    bound = uncertain_clique_bound(graph.num_vertices, bound_alpha)
    if result.num_cliques > bound:
        problems.append(
            f"output size {result.num_cliques} exceeds Theorem 1 bound {bound}"
        )
    return problems


def results_agree(first: EnumerationResult, second: EnumerationResult) -> bool:
    """Return ``True`` when two enumeration results contain the same cliques."""
    return first.vertex_sets() == second.vertex_sets()


def matches_deterministic_cliques(
    graph: UncertainGraph, result: EnumerationResult
) -> bool:
    """Check the α→1 degenerate case against Bron–Kerbosch.

    When every edge probability is exactly 1.0 the α-maximal cliques (for any
    α ≤ 1) are exactly the deterministic maximal cliques of the skeleton.
    This function performs that comparison.
    """
    skeleton = graph.skeleton()
    expected = {frozenset(c) for c in enumerate_maximal_cliques(skeleton, method="pivot")}
    return result.vertex_sets() == expected


def check_output_bound(graph: UncertainGraph, result: EnumerationResult) -> bool:
    """Return ``True`` when the output size respects the Theorem 1 bound."""
    alpha = result.alpha if result.alpha < 1.0 else 1.0
    return result.num_cliques <= uncertain_clique_bound(graph.num_vertices, alpha)
