"""Verification, statistics and measurement harness."""

from .comparison import (
    MeasurementRow,
    alpha_sweep,
    compare_algorithms,
    format_table,
    runtime_vs_output_size,
    size_threshold_sweep,
)
from .statistics import CliqueStatistics, clique_statistics, vertex_participation
from .text_plots import ascii_bar_chart, ascii_line_chart
from .verification import (
    check_output_bound,
    matches_deterministic_cliques,
    results_agree,
    verify_result,
)

__all__ = [
    "verify_result",
    "results_agree",
    "matches_deterministic_cliques",
    "check_output_bound",
    "CliqueStatistics",
    "clique_statistics",
    "vertex_participation",
    "MeasurementRow",
    "compare_algorithms",
    "alpha_sweep",
    "size_threshold_sweep",
    "runtime_vs_output_size",
    "format_table",
    "ascii_line_chart",
    "ascii_bar_chart",
]
