"""Measurement harness used by the benchmark suite.

Every figure in the paper's evaluation is a sweep of one of three shapes:

* **algorithm comparison** (Figure 1): run MULE and DFS-NOIP on the same
  graph/α and compare runtimes;
* **α sweep** (Figures 2–4): run MULE across a range of thresholds and
  record runtime and output size;
* **size-threshold sweep** (Figures 5–6): run LARGE-MULE across a range of
  ``t`` values for several thresholds.

This module implements those sweeps once, returning plain list-of-dict rows
(the same rows the paper plots), plus a small text-table formatter so the
benchmarks can print paper-style summaries into ``bench_output.txt``.

Every sweep runs through one :class:`~repro.api.MiningSession` per graph,
so the graph is compiled once per sweep (α points are served by cheap
derivation, algorithms at the same α share the artifact outright) while the
recorded rows — counters included — stay bit-identical to calling the free
functions per point.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence

from ..api import EnumerationRequest, MiningSession
from ..core.engine import RunControls
from ..core.result import EnumerationResult
from ..errors import ReproError
from ..uncertain.graph import UncertainGraph

__all__ = [
    "MeasurementRow",
    "compare_algorithms",
    "alpha_sweep",
    "size_threshold_sweep",
    "runtime_vs_output_size",
    "parallel_scaling",
    "format_table",
]

MeasurementRow = dict[str, object]

_REQUESTS: dict[str, Callable[[float, RunControls | None], EnumerationRequest]] = {
    "mule": lambda alpha, controls: EnumerationRequest(
        algorithm="mule", alpha=alpha, controls=controls
    ),
    "fast-mule": lambda alpha, controls: EnumerationRequest(
        algorithm="fast-mule", alpha=alpha, controls=controls
    ),
    "dfs-noip": lambda alpha, controls: EnumerationRequest(
        algorithm="dfs-noip", alpha=alpha, controls=controls
    ),
    # The sharded runner at its default worker count; use parallel_scaling
    # for a controlled worker sweep.
    "parallel-mule": lambda alpha, controls: EnumerationRequest(
        algorithm="mule", alpha=alpha, controls=controls, workers=None
    ),
}


def compare_algorithms(
    graphs: dict[str, UncertainGraph],
    alphas: Sequence[float],
    *,
    algorithms: Sequence[str] = ("mule", "dfs-noip"),
    controls: RunControls | None = None,
) -> list[MeasurementRow]:
    """Reproduce the Figure 1 comparison rows.

    For every (graph, α, algorithm) combination, run the enumerator and
    record its runtime, output size and search-effort counters.  All
    algorithms enumerate the same cliques, so ``num_cliques`` must agree
    within each (graph, α) pair — the benchmark asserts this.

    Parameters
    ----------
    graphs:
        Mapping of display name → uncertain graph.
    alphas:
        The probability thresholds to test.
    algorithms:
        Subset of ``{"mule", "fast-mule", "dfs-noip"}``.
    controls:
        Optional :class:`~repro.core.engine.controls.RunControls` applied to
        every run, so a sweep over large graphs can be bounded; truncated
        rows carry their ``stop_reason``.
    """
    rows: list[MeasurementRow] = []
    for graph_name, graph in graphs.items():
        points = [(alpha, algorithm) for alpha in alphas for algorithm in algorithms]
        # One batch per graph: session.batch pre-warms a single derivation
        # base, so the sweep compiles once regardless of the α order.
        outcomes = MiningSession(graph).batch(
            _REQUESTS[algorithm](alpha, controls) for alpha, algorithm in points
        )
        for (alpha, _), outcome in zip(points, outcomes):
            rows.append(_row(graph_name, graph, alpha, outcome.to_result()))
    return rows


def alpha_sweep(
    graphs: dict[str, UncertainGraph],
    alphas: Sequence[float],
    *,
    prune_edges: bool = True,
    controls: RunControls | None = None,
) -> list[MeasurementRow]:
    """Reproduce the Figure 2/3 sweeps: MULE runtime and output size vs α.

    Implemented as :meth:`~repro.api.MiningSession.sweep`, so each graph is
    compiled exactly once for the whole α range (the rows are bit-identical
    to per-α :func:`mule` calls; only the wall-clock column benefits).
    """
    rows: list[MeasurementRow] = []
    for graph_name, graph in graphs.items():
        outcomes = MiningSession(graph).sweep(
            alphas, algorithm="mule", prune_edges=prune_edges, controls=controls
        )
        for alpha, outcome in zip(alphas, outcomes):
            rows.append(_row(graph_name, graph, alpha, outcome.to_result()))
    return rows


def size_threshold_sweep(
    graphs: dict[str, UncertainGraph],
    alphas: Sequence[float],
    size_thresholds: Sequence[int],
    *,
    shared_neighborhood_filtering: bool = True,
    controls: RunControls | None = None,
) -> list[MeasurementRow]:
    """Reproduce the Figure 5/6 sweeps: LARGE-MULE vs the size threshold ``t``.

    With shared-neighborhood filtering on, every (α, t) combination needs
    its own filtered compilation (the Modani–Dey filter depends on both);
    with it off, the session serves every ``t`` at the same α from one
    artifact.
    """
    rows: list[MeasurementRow] = []
    for graph_name, graph in graphs.items():
        points = [(alpha, t) for alpha in alphas for t in size_thresholds]
        outcomes = MiningSession(graph).batch(
            EnumerationRequest(
                algorithm="large",
                alpha=alpha,
                size_threshold=t,
                shared_neighborhood_filtering=shared_neighborhood_filtering,
                controls=controls,
            )
            for alpha, t in points
        )
        for (alpha, t), outcome in zip(points, outcomes):
            row = _row(graph_name, graph, alpha, outcome.to_result())
            row["size_threshold"] = t
            rows.append(row)
    return rows


def runtime_vs_output_size(
    graphs: dict[str, UncertainGraph], alphas: Sequence[float]
) -> list[MeasurementRow]:
    """Reproduce Figure 4: MULE runtime against the number of cliques output.

    The rows are the same as :func:`alpha_sweep`; this wrapper exists so the
    Figure 4 bench reads naturally and can later diverge (e.g. adding
    regression fits) without touching the other figures.
    """
    return alpha_sweep(graphs, alphas)


def parallel_scaling(
    graphs: dict[str, UncertainGraph],
    alphas: Sequence[float],
    worker_counts: Sequence[int] = (1, 2, 4),
    *,
    controls: RunControls | None = None,
) -> list[MeasurementRow]:
    """Measure sharded-parallel speedup against the serial enumerator.

    For every (graph, α) pair this runs serial :func:`mule` once as the
    baseline and :func:`~repro.parallel.parallel_mule` at each worker
    count, recording a ``workers`` column (0 for the serial baseline row)
    and the ``speedup`` relative to the baseline.  Complete (untruncated)
    runs additionally assert that the parallel clique set is identical to
    the serial one, so the sweep doubles as a parity check.

    Parameters
    ----------
    graphs:
        Mapping of display name → uncertain graph.
    alphas:
        The probability thresholds to test.
    worker_counts:
        Worker-process counts to measure (default ``(1, 2, 4)``).
    controls:
        Optional run controls applied to every run; truncated rows skip the
        parity assertion and carry their ``stop_reason``.
    """
    rows: list[MeasurementRow] = []
    for graph_name, graph in graphs.items():
        session = MiningSession(graph)
        # The baseline/parallel runs interleave per α, so pre-warm one
        # derivation base covering the whole α range up front.
        session.prepare(
            [
                EnumerationRequest(algorithm="mule", alpha=alpha, controls=controls)
                for alpha in alphas
            ]
        )
        for alpha in alphas:
            baseline = session.enumerate(
                EnumerationRequest(algorithm="mule", alpha=alpha, controls=controls)
            ).to_result()
            row = _row(graph_name, graph, alpha, baseline)
            row["workers"] = 0
            row["speedup"] = 1.0
            rows.append(row)
            for workers in worker_counts:
                # execution="parallel" keeps the shard/merge path (and the
                # parallel-mule label) even for the workers=1 row; every
                # run reuses the session's single compiled artifact.
                result = session.enumerate(
                    EnumerationRequest(
                        algorithm="mule",
                        alpha=alpha,
                        controls=controls,
                        workers=workers,
                        execution="parallel",
                    )
                ).to_result()
                if not baseline.truncated and not result.truncated:
                    # Bit-identical means probabilities too, not just the
                    # vertex sets; and a real exception, not assert — the
                    # parity guarantee must survive `python -O`, which is
                    # exactly how people run performance sweeps.
                    expected = {r.vertices: r.probability for r in baseline}
                    produced = {r.vertices: r.probability for r in result}
                    if produced != expected:
                        raise ReproError(
                            f"parallel-mule(workers={workers}) disagrees with "
                            f"serial mule on {graph_name} at alpha={alpha}"
                        )
                row = _row(graph_name, graph, alpha, result)
                row["workers"] = workers
                row["speedup"] = baseline.elapsed_seconds / max(
                    result.elapsed_seconds, 1e-9
                )
                rows.append(row)
    return rows


def _row(
    graph_name: str,
    graph: UncertainGraph,
    alpha: float,
    result: EnumerationResult,
) -> MeasurementRow:
    return {
        "graph": graph_name,
        "n": graph.num_vertices,
        "m": graph.num_edges,
        "alpha": alpha,
        "algorithm": result.algorithm,
        "num_cliques": result.num_cliques,
        "elapsed_seconds": result.elapsed_seconds,
        "recursive_calls": result.statistics.recursive_calls,
        "candidates_examined": result.statistics.candidates_examined,
        "probability_multiplications": result.statistics.probability_multiplications,
        "stop_reason": result.stop_reason,
    }


def format_table(rows: Iterable[MeasurementRow], *, columns: Sequence[str] | None = None) -> str:
    """Format measurement rows as an aligned text table.

    Floating point cells are rendered with 6 significant digits; missing
    cells render as ``-``.
    """
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.6g}"
        return str(value)

    table = [[render(row.get(column)) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(line[i]) for line in table))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(widths[i]) for i, column in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join(
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns))) for line in table
    )
    return "\n".join([header, separator, body])
