"""Worker fleet registry: liveness probing and failure bookkeeping.

:class:`WorkerPool` tracks a set of ``repro-mule serve`` base URLs and
classifies each worker as *healthy*, *suspect* or *dead* from two signals:

* **probes** — cheap ``GET /v1/health`` calls (control-plane timeout), run
  on demand via :meth:`WorkerPool.probe` or periodically by the optional
  background thread (:meth:`WorkerPool.start`);
* **data-plane reports** — the coordinator calls
  :meth:`WorkerPool.mark_failure` when a real shard call to a worker fails
  in flight, so a worker that answers health probes but drops enumeration
  traffic still degrades.

A worker starts *healthy*; each consecutive failure moves it to *suspect*
until ``failure_threshold`` failures mark it *dead*; one success resets it
to *healthy*.  *Suspect* workers stay usable (the coordinator keeps
assigning shards to them — a single dropped connection should not idle a
box), *dead* ones do not, but a later successful probe resurrects them.

All pool state is guarded by one lock (``repro-mule check`` enforces the
discipline); probes themselves run outside it so a slow worker never
blocks status queries.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Iterable
from dataclasses import dataclass

from ..errors import ParameterError, ServiceError
from ..obs import registry as _obs_registry
from ..service.client import DEFAULT_CONTROL_TIMEOUT_SECONDS, RemoteStore

__all__ = [
    "DEFAULT_FAILURE_THRESHOLD",
    "DEFAULT_PROBE_INTERVAL_SECONDS",
    "WorkerPool",
    "WorkerState",
    "WorkerStatus",
]

#: Seconds between probe rounds of the background thread.
DEFAULT_PROBE_INTERVAL_SECONDS = 5.0

#: Consecutive failures before a worker is declared dead.
DEFAULT_FAILURE_THRESHOLD = 3

_DIST_WORKER_TRANSITIONS = _obs_registry().counter(
    "dist_worker_transitions_total",
    "Worker liveness transitions, by destination state.",
    labelnames=("state",),
)


class WorkerState:
    """Closed vocabulary of worker liveness states."""

    HEALTHY = "healthy"
    SUSPECT = "suspect"
    DEAD = "dead"

    ALL = (HEALTHY, SUSPECT, DEAD)


@dataclass(frozen=True)
class WorkerStatus:
    """Immutable snapshot of one worker's liveness bookkeeping."""

    url: str
    state: str
    consecutive_failures: int
    last_error: str | None = None

    @property
    def usable(self) -> bool:
        """True when the coordinator may still assign shards to this worker."""
        return self.state != WorkerState.DEAD


class _WorkerRecord:
    """Mutable per-worker bookkeeping; only touched under the pool lock."""

    __slots__ = ("url", "state", "failures", "last_error")

    def __init__(self, url: str) -> None:
        self.url = url
        self.state = WorkerState.HEALTHY
        self.failures = 0
        self.last_error: str | None = None

    def snapshot(self) -> WorkerStatus:
        return WorkerStatus(
            url=self.url,
            state=self.state,
            consecutive_failures=self.failures,
            last_error=self.last_error,
        )


class WorkerPool:
    """Registry of enumeration workers with liveness states.

    Parameters
    ----------
    urls:
        Initial worker base URLs (each is :meth:`add_worker`-ed).
    probe_interval:
        Seconds between rounds of the optional background probe thread.
    failure_threshold:
        Consecutive failures that mark a worker dead.
    probe:
        Probe callable ``(url) -> None`` raising
        :class:`~repro.errors.ServiceError` on failure.  Defaults to a
        ``GET /v1/health`` against the worker; tests inject fakes here.
    """

    def __init__(
        self,
        urls: Iterable[str] = (),
        *,
        probe_interval: float = DEFAULT_PROBE_INTERVAL_SECONDS,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        probe: Callable[[str], None] | None = None,
    ) -> None:
        if probe_interval <= 0:
            raise ParameterError(
                f"probe_interval must be positive, got {probe_interval}"
            )
        if failure_threshold < 1:
            raise ParameterError(
                f"failure_threshold must be positive, got {failure_threshold}"
            )
        self._probe_interval = probe_interval
        self._failure_threshold = failure_threshold
        self._probe_call = probe if probe is not None else _default_probe
        self._lock = threading.Lock()
        self._workers: dict[str, _WorkerRecord] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        for url in urls:
            self.add_worker(url)

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #
    def add_worker(self, url: str) -> WorkerStatus:
        """Register a worker base URL (idempotent; starts *healthy*)."""
        url = url.rstrip("/")
        if not url:
            raise ParameterError("worker url must be non-empty")
        with self._lock:
            record = self._workers.get(url)
            if record is None:
                record = _WorkerRecord(url)
                self._workers[url] = record
            return record.snapshot()

    def remove_worker(self, url: str) -> WorkerStatus:
        """Unregister a worker; returns its final snapshot."""
        url = url.rstrip("/")
        with self._lock:
            record = self._workers.pop(url, None)
        if record is None:
            raise ParameterError(f"unknown worker {url!r}")
        return record.snapshot()

    def workers(self) -> list[WorkerStatus]:
        """Snapshots of every registered worker, in registration order."""
        with self._lock:
            return [record.snapshot() for record in self._workers.values()]

    def usable_urls(self) -> list[str]:
        """URLs the coordinator may assign shards to (healthy + suspect)."""
        with self._lock:
            return [
                record.url
                for record in self._workers.values()
                if record.state != WorkerState.DEAD
            ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._workers)

    # ------------------------------------------------------------------ #
    # Liveness signals
    # ------------------------------------------------------------------ #
    def probe(self) -> list[WorkerStatus]:
        """Run one probe round over every worker and return the snapshots.

        Probe calls happen outside the pool lock — a hung worker delays the
        round, never a concurrent :meth:`workers` query.
        """
        with self._lock:
            urls = list(self._workers)
        for url in urls:
            try:
                self._probe_call(url)
            except ServiceError as exc:
                self.mark_failure(url, exc)
            else:
                self.mark_healthy(url)
        return self.workers()

    def mark_failure(self, url: str, error: object = None) -> str | None:
        """Record one failed interaction with a worker; returns its new state.

        Used both by the probe loop and by the coordinator's data-plane
        error paths.  Unknown URLs (worker removed concurrently) answer
        ``None`` instead of raising — a failure report must never lose a
        race with membership changes.
        """
        with self._lock:
            record = self._workers.get(url.rstrip("/"))
            if record is None:
                return None
            record.failures += 1
            record.last_error = None if error is None else str(error)
            previous = record.state
            record.state = (
                WorkerState.DEAD
                if record.failures >= self._failure_threshold
                else WorkerState.SUSPECT
            )
            if record.state != previous:
                _DIST_WORKER_TRANSITIONS.labels(state=record.state).inc()
            return record.state

    def mark_healthy(self, url: str) -> str | None:
        """Record one successful interaction; resets the failure streak."""
        with self._lock:
            record = self._workers.get(url.rstrip("/"))
            if record is None:
                return None
            record.failures = 0
            record.last_error = None
            if record.state != WorkerState.HEALTHY:
                _DIST_WORKER_TRANSITIONS.labels(state=WorkerState.HEALTHY).inc()
            record.state = WorkerState.HEALTHY
            return record.state

    # ------------------------------------------------------------------ #
    # Background probing
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Start the periodic probe thread (no-op when already running)."""
        with self._lock:
            if self._thread is not None:
                return
            self._stop.clear()
            thread = threading.Thread(
                target=self._probe_loop, name="repro-worker-pool-probe", daemon=True
            )
            self._thread = thread
        thread.start()

    def close(self) -> None:
        """Stop the probe thread (if any) and wait for it to exit."""
        with self._lock:
            thread = self._thread
            self._thread = None
        self._stop.set()
        if thread is not None:
            thread.join()

    def _probe_loop(self) -> None:
        while not self._stop.wait(self._probe_interval):
            self.probe()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        states = [status.state for status in self.workers()]
        return f"WorkerPool(workers={len(states)}, states={states})"


def _default_probe(url: str) -> None:
    """The stock probe: one control-plane ``GET /v1/health``."""
    RemoteStore(url, timeout=DEFAULT_CONTROL_TIMEOUT_SECONDS).health()
