"""Distributed enumeration: fan shards out across a worker fleet.

The distributed layer turns N independent ``repro-mule serve`` processes
into one logical enumerator:

* :class:`~repro.distributed.pool.WorkerPool` — the fleet registry:
  liveness probes, healthy/suspect/dead states, failure thresholds;
* :class:`~repro.distributed.coordinator.DistributedSession` — the
  coordinator: plans root shards locally, ships the graph once per worker,
  runs one async job per shard over the v2 wire protocol, retries and
  reassigns shards when workers fail, and merges the outcomes into a
  result bit-identical to serial MULE.

See ``docs/architecture.md`` ("Distributed enumeration") for the topology
and the failure/retry semantics, and ``tests/distributed`` for the
in-process fleet parity and fault-injection suites.
"""

from __future__ import annotations

from .coordinator import (
    DEFAULT_MAX_ATTEMPTS,
    DEFAULT_RETRY_BACKOFF_CAP_SECONDS,
    DEFAULT_RETRY_BACKOFF_SECONDS,
    DistributedSession,
)
from .pool import (
    DEFAULT_FAILURE_THRESHOLD,
    DEFAULT_PROBE_INTERVAL_SECONDS,
    WorkerPool,
    WorkerState,
    WorkerStatus,
)

__all__ = [
    "DEFAULT_FAILURE_THRESHOLD",
    "DEFAULT_MAX_ATTEMPTS",
    "DEFAULT_PROBE_INTERVAL_SECONDS",
    "DEFAULT_RETRY_BACKOFF_CAP_SECONDS",
    "DEFAULT_RETRY_BACKOFF_SECONDS",
    "DistributedSession",
    "WorkerPool",
    "WorkerState",
    "WorkerStatus",
]
