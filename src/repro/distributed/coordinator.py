"""The distributed enumeration coordinator.

:class:`DistributedSession` fans one enumeration out across a fleet of
``repro-mule serve`` workers and merges the shard outcomes back into a
single :class:`~repro.api.outcome.EnumerationOutcome` that is
**bit-identical to serial MULE** on the same graph: same clique set with
the same probabilities, search counters summed across shards, stop-reason
provenance merged under the precedence of :mod:`repro.parallel.runner`.

The pipeline per :meth:`DistributedSession.enumerate` call:

1. compile the graph locally (cache-backed) and plan root shards with the
   degree-weighted :class:`~repro.parallel.planner.ShardPlanner` — the
   same partition primitive the in-process parallel path uses, so shard
   union = serial output holds by construction;
2. upload the graph once per worker (``POST /v2/graphs`` is content-keyed
   and idempotent by fingerprint, so re-runs and shared workers cost one
   upload each);
3. submit every shard as an asynchronous job (``POST /v2/jobs``) whose
   request carries the shard's root vertices in the additive v2
   ``root_shard`` field, round-robin over the usable workers;
4. await the jobs and merge, in shard-index order for determinism.

Robustness: a shard whose worker fails mid-flight (submit or stream) is
reassigned to the next usable worker with capped exponential backoff and
at-most-once merging (a shard id enters the merge exactly once, no matter
how many submissions it took).  Failures are reported to the
:class:`~repro.distributed.pool.WorkerPool`, so repeat offenders degrade
to *dead* and leave the rotation.  When no usable worker remains, the run
raises :class:`~repro.errors.DegradedError`; when a single shard exhausts
its attempt budget while workers remain, the last transport error
propagates as :class:`~repro.errors.ServiceError`.  :meth:`cancel` fans
cooperative cancellation out to every in-flight job.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterable
from dataclasses import replace

from ..api.outcome import EnumerationOutcome
from ..api.request import EnumerationRequest
from ..api.session import MiningSession
from ..core.engine.compiled import CompiledGraph
from ..core.engine.controls import RunReport, StopReason
from ..core.result import CliqueRecord, SearchStatistics, Stopwatch
from ..errors import DegradedError, ParameterError, ServiceError
from ..obs import registry as _obs_registry
from ..parallel.planner import Shard, ShardPlanner
from ..parallel.runner import _merge_stop_reasons, _strongest
from ..service.client import (
    DEFAULT_TIMEOUT_SECONDS,
    RemoteJob,
    RemoteSession,
    RemoteStore,
)
from ..uncertain.graph import UncertainGraph
from .pool import WorkerPool

__all__ = [
    "DEFAULT_MAX_ATTEMPTS",
    "DEFAULT_RETRY_BACKOFF_CAP_SECONDS",
    "DEFAULT_RETRY_BACKOFF_SECONDS",
    "DistributedSession",
]

#: Submissions allowed per shard before its last error propagates.
DEFAULT_MAX_ATTEMPTS = 3

#: First retry delay; doubles per subsequent attempt of the same shard.
DEFAULT_RETRY_BACKOFF_SECONDS = 0.05

#: Upper bound on the per-retry delay.
DEFAULT_RETRY_BACKOFF_CAP_SECONDS = 2.0

#: Default oversubscription: shards per usable worker.  More shards than
#: workers lets reassignment move work in units smaller than "half the
#: graph" when a worker dies.
_SHARDS_PER_WORKER = 2

_DIST_SHARD_ATTEMPTS = _obs_registry().counter(
    "dist_shard_attempts_total", "Shard placements accepted by a worker."
)
_DIST_SHARD_RETRIES = _obs_registry().counter(
    "dist_shard_retries_total",
    "Shard placements that were retries of an earlier failed attempt.",
)


class DistributedSession:
    """Enumerate one graph across a fleet of remote workers.

    Parameters
    ----------
    graph:
        The uncertain graph to mine.  It is compiled locally for shard
        planning and shipped to each worker over the wire.
    workers:
        A :class:`~repro.distributed.pool.WorkerPool` (shared, caller owns
        its lifecycle) or an iterable of worker base URLs (a private pool
        is created and closed with the session).
    num_shards:
        Shard count override; default ``2 × usable workers`` (a request's
        own ``num_shards`` field wins over both).
    max_attempts:
        Submissions allowed per shard before giving up.
    retry_backoff_seconds / retry_backoff_cap_seconds:
        Capped exponential delay between retries of the same shard.
    page_size:
        Result-page granularity forwarded to each worker job.
    timeout:
        Data-plane socket timeout per worker call.
    """

    def __init__(
        self,
        graph: UncertainGraph,
        workers: "WorkerPool | Iterable[str]",
        *,
        num_shards: int | None = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        retry_backoff_seconds: float = DEFAULT_RETRY_BACKOFF_SECONDS,
        retry_backoff_cap_seconds: float = DEFAULT_RETRY_BACKOFF_CAP_SECONDS,
        page_size: int | None = None,
        timeout: float = DEFAULT_TIMEOUT_SECONDS,
    ) -> None:
        if max_attempts < 1:
            raise ParameterError(f"max_attempts must be positive, got {max_attempts}")
        if num_shards is not None and num_shards < 1:
            raise ParameterError(f"num_shards must be positive, got {num_shards}")
        if retry_backoff_seconds < 0 or retry_backoff_cap_seconds < 0:
            raise ParameterError("retry backoff delays must be non-negative")
        self._graph = graph
        if isinstance(workers, WorkerPool):
            self._pool = workers
            self._owns_pool = False
        else:
            self._pool = WorkerPool(workers)
            self._owns_pool = True
        if not len(self._pool):
            raise ParameterError("a distributed session needs at least one worker")
        self._num_shards = num_shards
        self._max_attempts = max_attempts
        self._backoff = retry_backoff_seconds
        self._backoff_cap = retry_backoff_cap_seconds
        self._page_size = page_size
        self._timeout = timeout
        self._local = MiningSession(graph)
        # Coordinator state shared with cancel() callers; everything below
        # is written only under the lock.
        self._lock = threading.Lock()
        self._cancelled = False
        self._active: dict[int, RemoteJob] = {}
        self._uploaded: dict[str, str] = {}

    @property
    def pool(self) -> WorkerPool:
        """The worker pool backing this session."""
        return self._pool

    # ------------------------------------------------------------------ #
    # The MiningSession-shaped surface
    # ------------------------------------------------------------------ #
    def enumerate(self, request: EnumerationRequest) -> EnumerationOutcome:
        """Fan ``request`` out over the fleet and merge the shard outcomes.

        The merged outcome satisfies
        ``outcome.assert_matches(serial_outcome)`` for an untruncated run:
        identical cliques and probabilities, summed counters, merged stop
        reason.  Records are concatenated in shard-index order (the
        deterministic analog of the in-process parallel merge).
        """
        self._check_request(request)
        with self._lock:
            self._cancelled = False
            self._active = {}
        statistics = SearchStatistics()
        report = RunReport()
        records: list[CliqueRecord] = []
        with Stopwatch() as timer:
            if self._graph.num_vertices > 0:
                outcomes = self._run(request)
                for index in sorted(outcomes):
                    shard_outcome = outcomes[index]
                    statistics = statistics.merge(shard_outcome.statistics)
                    records.extend(shard_outcome.records)
                # Every shard kernel that ran counted its own root frame,
                # where one serial run counts exactly one; deduplicate the
                # extras so the summed counters are bit-identical to serial
                # MULE (a kernel that ran always has >= 1 recursive call —
                # shards cancelled before starting contribute zeros and no
                # root frame).
                started = sum(
                    1
                    for outcome in outcomes.values()
                    if outcome.statistics.recursive_calls > 0
                )
                if started > 1:
                    statistics.recursive_calls -= started - 1
                stop = _merge_stop_reasons(
                    outcomes[index].stop_reason for index in sorted(outcomes)
                )
                with self._lock:
                    if self._cancelled:
                        stop = _strongest(stop, StopReason.CANCELLED)
                max_cliques = (
                    request.controls.max_cliques if request.controls else None
                )
                if max_cliques is not None and len(records) > max_cliques:
                    # Mirror the in-process parallel merge: the cap binds on
                    # the merged, sorted records; truncation anywhere still
                    # outranks it under the merge precedence.
                    records = sorted(records)[:max_cliques]
                    stop = _strongest(stop, StopReason.MAX_CLIQUES)
                report.stop_reason = stop
                report.cliques_emitted = len(records)
        return EnumerationOutcome(
            algorithm="distributed-mule",
            alpha=request.alpha,
            records=records,
            statistics=statistics,
            report=report,
            elapsed_seconds=timer.elapsed,
            request=request,
        )

    def cancel(self) -> None:
        """Cooperatively cancel the in-flight run: fan-out to every job.

        Safe from any thread.  Workers finish their shards with
        ``cancelled`` provenance; the merged outcome reports
        ``stop_reason="cancelled"`` with whatever records were already
        emitted.
        """
        with self._lock:
            self._cancelled = True
            jobs = list(self._active.values())
        for job in jobs:
            try:
                job.cancel()
            except ServiceError:
                # A vanished worker's job needs no cancellation; its shard
                # is not resubmitted once the run is cancelled.
                pass

    def close(self) -> None:
        """Release the session (closes a privately-owned pool)."""
        if self._owns_pool:
            self._pool.close()

    def __enter__(self) -> "DistributedSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # The fan-out pipeline
    # ------------------------------------------------------------------ #
    def _run(self, request: EnumerationRequest) -> dict[int, EnumerationOutcome]:
        compiled = self._local.compiled(alpha=request.compile_alpha())
        urls = self._pool.usable_urls()
        if not urls:
            raise DegradedError("no usable worker remains in the pool")
        num_shards = (
            request.num_shards
            or self._num_shards
            or max(1, _SHARDS_PER_WORKER * len(urls))
        )
        shards = ShardPlanner(num_shards).plan(compiled)
        attempts = {shard.index: 0 for shard in shards}
        last_errors: dict[int, ServiceError] = {}
        active: dict[int, tuple[str, RemoteJob]] = {}
        merged: dict[int, EnumerationOutcome] = {}
        rotation = 0

        def submit(shard: Shard) -> bool:
            """Place ``shard`` on some usable worker; False once cancelled.

            ``max_attempts`` bounds successful *placements* (a placement
            whose stream later dies consumes one attempt); submissions that
            fail outright only mark the worker, so a dying box cannot eat a
            shard's whole budget — the loop still terminates because every
            failed contact pushes some worker toward *dead*, and an empty
            rotation raises :class:`~repro.errors.DegradedError`.
            """
            nonlocal rotation
            while True:
                with self._lock:
                    if self._cancelled:
                        return False
                workers = self._pool.usable_urls()
                if not workers:
                    raise DegradedError(
                        f"no usable worker remains to run shard "
                        f"{shard.index} (last error: "
                        f"{last_errors.get(shard.index)})"
                    )
                attempt = attempts[shard.index]
                if attempt >= self._max_attempts:
                    raise ServiceError(
                        f"shard {shard.index} failed after {attempt} "
                        f"attempt(s): {last_errors.get(shard.index)}"
                    )
                if attempt > 0:
                    time.sleep(self._retry_delay(attempt))
                url = workers[rotation % len(workers)]
                rotation += 1
                try:
                    fingerprint = self._ensure_uploaded(url)
                    session = RemoteSession(
                        url, graph=fingerprint, timeout=self._timeout
                    )
                    job = session.submit(
                        self._shard_request(request, compiled, shard),
                        page_size=self._page_size,
                    )
                except ServiceError as exc:
                    last_errors[shard.index] = exc
                    self._pool.mark_failure(url, exc)
                    continue
                attempts[shard.index] = attempt + 1
                _DIST_SHARD_ATTEMPTS.inc()
                if attempt > 0:
                    _DIST_SHARD_RETRIES.inc()
                active[shard.index] = (url, job)
                with self._lock:
                    self._active[shard.index] = job
                return True

        # Fan out every shard up-front: the jobs run concurrently across
        # the fleet while this coordinator awaits them in shard order.  A
        # run that aborts (no workers left, retry budget blown) first fans
        # cancellation out to whatever is still in flight.
        try:
            for shard in shards:
                submit(shard)
            for shard in shards:
                while shard.index not in merged:
                    assignment = active.get(shard.index)
                    if assignment is None:
                        # Submission was skipped (cancelled): synthesise the
                        # empty cancelled outcome so the merge stays total.
                        merged[shard.index] = _cancelled_outcome(request)
                        break
                    url, job = assignment
                    try:
                        outcome = job.wait()
                    except ServiceError as exc:
                        # The worker died mid-shard: report it, drop the
                        # assignment and resubmit elsewhere (at-most-once
                        # merge holds — the failed job contributed nothing).
                        last_errors[shard.index] = exc
                        self._pool.mark_failure(url, exc)
                        active.pop(shard.index, None)
                        with self._lock:
                            self._active.pop(shard.index, None)
                        submit(shard)
                        continue
                    with self._lock:
                        self._active.pop(shard.index, None)
                    merged[shard.index] = outcome
        except ServiceError:
            # DegradedError included: release the fleet before propagating.
            self.cancel()
            raise
        return merged

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _check_request(self, request: EnumerationRequest) -> None:
        if request.algorithm not in ("mule", "fast"):
            raise ParameterError(
                f"distributed enumeration supports mule/fast only, "
                f"got {request.algorithm!r}"
            )
        if request.parallel:
            raise ParameterError(
                "distributed requests must be serial (workers=1): the "
                "coordinator owns the fan-out; per-worker process pools "
                "would shard twice"
            )
        if request.root_shard is not None:
            raise ParameterError(
                "root_shard is assigned by the coordinator; submit the "
                "request without it"
            )

    def _retry_delay(self, attempt: int) -> float:
        """Capped exponential backoff before attempt ``attempt + 1``."""
        return min(self._backoff_cap, self._backoff * (2 ** (attempt - 1)))

    def _ensure_uploaded(self, url: str) -> str:
        """Upload the graph to ``url`` once; returns its fingerprint."""
        with self._lock:
            fingerprint = self._uploaded.get(url)
        if fingerprint is not None:
            return fingerprint
        info = RemoteStore(url, timeout=self._timeout).add(self._graph)
        with self._lock:
            self._uploaded[url] = info.fingerprint
        return info.fingerprint

    @staticmethod
    def _shard_request(
        request: EnumerationRequest, compiled: CompiledGraph, shard: Shard
    ) -> EnumerationRequest:
        """The per-worker request: the original plus this shard's roots."""
        labels = tuple(compiled.labels[index] for index in shard.roots)
        return replace(
            request,
            root_shard=labels,
            workers=1,
            num_shards=None,
            execution="serial",
        )

    def __repr__(self) -> str:
        return (
            f"DistributedSession(graph={self._graph!r}, "
            f"pool={self._pool!r})"
        )


def _cancelled_outcome(request: EnumerationRequest) -> EnumerationOutcome:
    """The empty outcome of a shard whose submission was cancelled."""
    return EnumerationOutcome(
        algorithm=request.label,
        alpha=request.alpha,
        report=RunReport(stop_reason=StopReason.CANCELLED),
        request=request,
    )
