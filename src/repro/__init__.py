"""repro — a reproduction of "Mining Maximal Cliques from an Uncertain Graph".

The library implements the MULE algorithm family (MULE, LARGE-MULE and the
DFS-NOIP baseline) for enumerating α-maximal cliques from uncertain graphs,
together with the uncertain-graph substrate, the counting bounds of the
paper's Section 3, dataset analogs of its evaluation inputs, and a
measurement harness reproducing every table and figure of its evaluation.

Quickstart
----------
The classic one-shot style — one free function per algorithm:

>>> from repro import UncertainGraph, mule
>>> g = UncertainGraph(edges=[(1, 2, 0.9), (2, 3, 0.9), (1, 3, 0.9), (3, 4, 0.4)])
>>> [sorted(record.vertices) for record in mule(g, 0.5)]
[[4], [1, 2, 3]]

The session style — compile the graph once, run any number of requests
(any algorithm, any α, serial or parallel) against the cached artifact:

>>> from repro import EnumerationRequest, MiningSession
>>> session = MiningSession(g)
>>> outcome = session.enumerate(EnumerationRequest(algorithm="mule", alpha=0.5))
>>> sorted(sorted(r.vertices) for r in outcome)
[[1, 2, 3], [4]]
>>> [o.num_cliques for o in session.sweep([0.5, 0.8])]
[2, 4]
>>> session.cache_info().compilations
1

See ``docs/api.md`` for the full request/outcome model and the caching
semantics.
"""

# NOTE: the .core imports must come first.  The api layer imports engine
# submodules (which initialises the repro.core package, whose __init__
# aggregates the wrapper modules, which import the api layer back); starting
# from .core lets that cycle resolve, whereas starting from .api would hit
# the partially-initialised api package from inside the wrappers.
from .core.bounds import (
    extremal_uncertain_graph,
    moon_moser_bound,
    moon_moser_graph,
    uncertain_clique_bound,
)
from .core.brute_force import brute_force_alpha_maximal_cliques, is_alpha_maximal_clique
from .core.dfs_noip import dfs_noip
from .core.engine import (
    CompiledGraph,
    EnumerationStrategy,
    LargeCliqueStrategy,
    MuleStrategy,
    NoIncrementalStrategy,
    RunControls,
    RunReport,
    StopReason,
    TopKStrategy,
    compile_graph,
    run_search,
)
from .core.fast_mule import fast_mule
from .core.large_mule import LargeMuleConfig, large_mule
from .core.mule import MuleConfig, iter_alpha_maximal_cliques, mule
from .core.result import CliqueRecord, EnumerationResult, SearchStatistics
from .core.top_k import TopKResult, top_k_by_threshold_search, top_k_maximal_cliques
from .api import (
    CacheInfo,
    CompiledGraphCache,
    EnumerationOutcome,
    EnumerationRequest,
    GraphInfo,
    GraphStore,
    MiningSession,
)
from .datasets.registry import available_datasets, load_dataset, resolve_dataset_name
from .parallel import Shard, ShardPlanner, parallel_mule
from .service import (
    EnumerationScheduler,
    MiningServer,
    RemoteSession,
    RemoteStore,
    connect,
)
from .deterministic.graph import Graph
from .distributed import DistributedSession, WorkerPool
from .errors import (
    DatasetError,
    DegradedError,
    EdgeError,
    FormatError,
    GraphError,
    GraphNotFoundError,
    ParameterError,
    ProbabilityError,
    ReproError,
    ServiceError,
    StoreError,
    VertexError,
)
from .uncertain.graph import UncertainGraph
from .uncertain.io import read_edge_list, write_edge_list

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # graphs
    "UncertainGraph",
    "Graph",
    # session API
    "MiningSession",
    "EnumerationRequest",
    "EnumerationOutcome",
    "CompiledGraphCache",
    "CacheInfo",
    "GraphStore",
    "GraphInfo",
    # enumeration algorithms
    "mule",
    "MuleConfig",
    "iter_alpha_maximal_cliques",
    "large_mule",
    "LargeMuleConfig",
    "dfs_noip",
    "fast_mule",
    "brute_force_alpha_maximal_cliques",
    "is_alpha_maximal_clique",
    "top_k_maximal_cliques",
    "top_k_by_threshold_search",
    "TopKResult",
    # parallel enumeration
    "parallel_mule",
    "ShardPlanner",
    "Shard",
    # results
    "EnumerationResult",
    "CliqueRecord",
    "SearchStatistics",
    # enumeration engine
    "CompiledGraph",
    "compile_graph",
    "run_search",
    "RunControls",
    "RunReport",
    "StopReason",
    "EnumerationStrategy",
    "MuleStrategy",
    "NoIncrementalStrategy",
    "LargeCliqueStrategy",
    "TopKStrategy",
    # bounds and extremal constructions
    "moon_moser_bound",
    "uncertain_clique_bound",
    "extremal_uncertain_graph",
    "moon_moser_graph",
    # datasets and I/O
    "available_datasets",
    "resolve_dataset_name",
    "load_dataset",
    "read_edge_list",
    "write_edge_list",
    # errors
    "ReproError",
    "GraphError",
    "VertexError",
    "EdgeError",
    "ProbabilityError",
    "ParameterError",
    "DatasetError",
    "FormatError",
    "ServiceError",
    "StoreError",
    "GraphNotFoundError",
    "DegradedError",
    # service layer
    "MiningServer",
    "RemoteSession",
    "RemoteStore",
    "connect",
    "EnumerationScheduler",
    # distributed enumeration
    "DistributedSession",
    "WorkerPool",
]
