"""Uncertain graph substrate: data structure, construction, sampling, I/O."""

from .builder import UncertainGraphBuilder, from_edge_triples, from_skeleton
from .graph import UncertainGraph, validate_probability
from .io import (
    from_json,
    from_networkx,
    read_edge_list,
    read_json,
    to_json,
    to_networkx,
    write_edge_list,
    write_json,
)
from .operations import (
    connected_components,
    filter_edges,
    largest_component,
    neighborhood_subgraph,
    prune_edges_below_alpha,
    prune_isolated_vertices,
)
from .sampling import (
    enumerate_possible_worlds,
    estimate_clique_probability,
    sample_possible_world,
    sample_possible_worlds,
    world_probability,
)
from .statistics import (
    GraphSummary,
    degree_histogram,
    expected_degree_by_vertex,
    global_clustering_coefficient,
    probability_histogram,
    summarize,
)

__all__ = [
    "UncertainGraph",
    "validate_probability",
    "UncertainGraphBuilder",
    "from_skeleton",
    "from_edge_triples",
    "prune_edges_below_alpha",
    "prune_isolated_vertices",
    "filter_edges",
    "neighborhood_subgraph",
    "connected_components",
    "largest_component",
    "sample_possible_world",
    "sample_possible_worlds",
    "enumerate_possible_worlds",
    "estimate_clique_probability",
    "world_probability",
    "write_edge_list",
    "read_edge_list",
    "to_json",
    "from_json",
    "write_json",
    "read_json",
    "to_networkx",
    "from_networkx",
    "GraphSummary",
    "summarize",
    "degree_histogram",
    "probability_histogram",
    "expected_degree_by_vertex",
    "global_clustering_coefficient",
]
