"""Graph-level operations on uncertain graphs.

The most important operation for the paper's algorithms is the
α-threshold edge pruning of Observation 3: any edge with probability below
``α`` can never participate in an α-clique of size ≥ 2, so it can be dropped
before enumeration without changing the output.  The other helpers here
(induced neighborhoods, vertex filtering, component decomposition) support
the LARGE-MULE pre-pruning and the dataset statistics.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable

from .graph import UncertainGraph, validate_probability

__all__ = [
    "prune_edges_below_alpha",
    "prune_isolated_vertices",
    "filter_edges",
    "neighborhood_subgraph",
    "connected_components",
    "largest_component",
]

Vertex = Hashable


def prune_edges_below_alpha(
    graph: UncertainGraph, alpha: float, *, drop_isolated: bool = False
) -> UncertainGraph:
    """Return a copy of ``graph`` with every edge of probability < ``alpha`` removed.

    This is the preprocessing justified by Observation 3 of the paper: if
    ``C`` is an α-clique then every edge inside ``C`` has ``p(e) ≥ α``, so
    removing lighter edges preserves all α-cliques (and hence all α-maximal
    cliques) of size at least two.  Singleton α-maximal cliques are also
    preserved because vertices are kept (unless ``drop_isolated`` is set).

    Parameters
    ----------
    graph:
        The input uncertain graph (not modified).
    alpha:
        The probability threshold in ``(0, 1]``.
    drop_isolated:
        When ``True``, vertices left without any incident edge after the
        pruning are removed as well.  Use only when singleton cliques are
        not of interest.

    >>> g = UncertainGraph(edges=[(1, 2, 0.9), (2, 3, 0.1)])
    >>> pruned = prune_edges_below_alpha(g, 0.5)
    >>> pruned.num_edges
    1
    """
    alpha = validate_probability(alpha, what="alpha")
    result = UncertainGraph(vertices=graph.vertices())
    for u, v, p in graph.edges():
        if p >= alpha:
            result.add_edge(u, v, p)
    if drop_isolated:
        result = prune_isolated_vertices(result)
    return result


def prune_isolated_vertices(graph: UncertainGraph) -> UncertainGraph:
    """Return a copy of ``graph`` with all degree-0 vertices removed."""
    keep = [v for v in graph.vertices() if graph.degree(v) > 0]
    return graph.subgraph(keep)


def filter_edges(
    graph: UncertainGraph,
    predicate: Callable[[Vertex, Vertex, float], bool],
) -> UncertainGraph:
    """Return a copy of ``graph`` keeping only edges for which ``predicate`` holds.

    The predicate receives ``(u, v, p)`` for each edge.  All vertices are
    retained.
    """
    result = UncertainGraph(vertices=graph.vertices())
    for u, v, p in graph.edges():
        if predicate(u, v, p):
            result.add_edge(u, v, p)
    return result


def neighborhood_subgraph(
    graph: UncertainGraph, center: Vertex, *, include_center: bool = True
) -> UncertainGraph:
    """Return the uncertain subgraph induced by ``Γ(center)`` (plus the center).

    Useful for ego-network analyses such as the protein-complex example.
    """
    vertices = graph.neighbors(center)
    if include_center:
        vertices = vertices | {center}
    return graph.subgraph(vertices)


def connected_components(graph: UncertainGraph) -> list[set[Vertex]]:
    """Return the connected components of the skeleton as vertex sets.

    Connectivity here ignores probabilities — two vertices are connected when
    a path of possible edges joins them.
    """
    remaining = set(graph.vertices())
    components: list[set[Vertex]] = []
    while remaining:
        root = next(iter(remaining))
        seen = {root}
        stack = [root]
        while stack:
            u = stack.pop()
            for w in graph.adjacency(u):
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
        components.append(seen)
        remaining -= seen
    return components


def largest_component(graph: UncertainGraph) -> UncertainGraph:
    """Return the uncertain subgraph induced by the largest connected component.

    Returns an empty graph when the input has no vertices.
    """
    components = connected_components(graph)
    if not components:
        return UncertainGraph()
    biggest = max(components, key=len)
    return graph.subgraph(biggest)
