"""The uncertain graph data structure.

An uncertain graph ``G = (V, E, p)`` (Section 2 of the paper) is an
undirected simple graph in which every edge ``e`` carries an independent
existence probability ``p(e) ∈ (0, 1]``.  The graph is a compact
representation of a probability distribution over the ``2^m`` deterministic
subgraphs of ``(V, E)`` — the *possible worlds*.

Design notes
------------
* Adjacency is stored as ``dict[vertex, dict[vertex, float]]`` so that both
  neighborhood iteration and edge-probability lookup are O(1) expected time.
  The paper's complexity analysis (Lemma 10) explicitly assumes constant
  time probability lookups ("the edge probabilities can be stored as a
  HashMap"); this mirrors that assumption.
* Probabilities of exactly ``1.0`` are allowed (a certain edge); ``0`` is
  not, because an impossible edge is equivalent to no edge at all.
* Vertices may be any hashable value.  The enumeration algorithms relabel
  vertices to integers ``1..n`` internally.
"""

from __future__ import annotations

import hashlib
import math
from collections.abc import Hashable, Iterable, Iterator
from typing import Any

from ..deterministic.graph import Graph, normalize_edge
from ..errors import EdgeError, ProbabilityError, VertexError

__all__ = ["UncertainGraph", "validate_probability"]

Vertex = Hashable
Edge = tuple[Any, Any]


def _canonical_label(v: Vertex) -> str:
    """Equality-respecting encoding of a vertex label for fingerprinting.

    Python dict keys compare ``1 == 1.0 == True``, so two ``==``-equal
    graphs may hold the "same" vertex under different numeric types;
    encoding numbers by value keeps :meth:`UncertainGraph.fingerprint`
    consistent with ``__eq__``.  Non-numeric labels fall back to
    ``type:repr``.
    """
    if isinstance(v, (bool, int)):
        return f"n{int(v)}"
    if isinstance(v, float):
        if v.is_integer() and abs(v) <= 2.0**53:
            return f"n{int(v)}"
        return f"f{v.hex()}"
    return f"r{type(v).__name__}:{v!r}"


def validate_probability(p: float, *, what: str = "edge probability") -> float:
    """Validate that ``p`` is a real number in ``(0, 1]`` and return it as float.

    Raises
    ------
    ProbabilityError
        If ``p`` is not a finite number in the half-open interval ``(0, 1]``.

    >>> validate_probability(0.5)
    0.5
    """
    try:
        value = float(p)
    except (TypeError, ValueError) as exc:
        raise ProbabilityError(f"{what} must be a number, got {p!r}") from exc
    if math.isnan(value) or math.isinf(value):
        raise ProbabilityError(f"{what} must be finite, got {value!r}")
    if not 0.0 < value <= 1.0:
        raise ProbabilityError(f"{what} must lie in (0, 1], got {value!r}")
    return value


class UncertainGraph:
    """An undirected simple graph with independent edge existence probabilities.

    Parameters
    ----------
    vertices:
        Optional iterable of initial vertices.
    edges:
        Optional iterable of ``(u, v, p)`` triples.

    Examples
    --------
    >>> g = UncertainGraph(edges=[(1, 2, 0.9), (2, 3, 0.5)])
    >>> g.num_vertices, g.num_edges
    (3, 2)
    >>> g.probability(2, 1)
    0.9
    >>> round(g.clique_probability([1, 2]), 3)
    0.9
    """

    def __init__(
        self,
        vertices: Iterable[Vertex] | None = None,
        edges: Iterable[tuple[Vertex, Vertex, float]] | None = None,
    ) -> None:
        self._adj: dict[Vertex, dict[Vertex, float]] = {}
        if vertices is not None:
            for v in vertices:
                self.add_vertex(v)
        if edges is not None:
            for u, v, p in edges:
                self.add_edge(u, v, p)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add_vertex(self, v: Vertex) -> None:
        """Add vertex ``v``; adding an existing vertex is a no-op."""
        if v not in self._adj:
            self._adj[v] = {}

    def add_edge(self, u: Vertex, v: Vertex, probability: float) -> None:
        """Add the edge ``{u, v}`` with the given existence probability.

        Endpoints are created if missing.  Re-adding an existing edge
        overwrites its probability.

        Raises
        ------
        EdgeError
            If ``u == v``.
        ProbabilityError
            If ``probability`` is not in ``(0, 1]``.
        """
        if u == v:
            raise EdgeError(f"self-loop on vertex {u!r} is not allowed in a simple graph")
        p = validate_probability(probability)
        self.add_vertex(u)
        self.add_vertex(v)
        self._adj[u][v] = p
        self._adj[v][u] = p

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the edge ``{u, v}``.

        Raises
        ------
        EdgeError
            If the edge is not present.
        """
        if not self.has_edge(u, v):
            raise EdgeError(f"edge {{{u!r}, {v!r}}} is not in the graph")
        del self._adj[u][v]
        del self._adj[v][u]

    def remove_vertex(self, v: Vertex) -> None:
        """Remove vertex ``v`` along with all incident edges.

        Raises
        ------
        VertexError
            If ``v`` is not present.
        """
        if v not in self._adj:
            raise VertexError(f"vertex {v!r} is not in the graph")
        for u in list(self._adj[v]):
            del self._adj[u][v]
        del self._adj[v]

    # ------------------------------------------------------------------ #
    # Basic queries
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of possible edges ``m``."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    @property
    def num_possible_worlds(self) -> int:
        """Number of possible worlds, ``2^m`` (exact integer)."""
        return 1 << self.num_edges

    def has_vertex(self, v: Vertex) -> bool:
        """Return ``True`` when ``v`` is a vertex of the graph."""
        return v in self._adj

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return ``True`` when the possible edge ``{u, v}`` exists."""
        return u in self._adj and v in self._adj[u]

    def probability(self, u: Vertex, v: Vertex) -> float:
        """Return ``p({u, v})``.

        Raises
        ------
        EdgeError
            If the edge is not present in the graph.
        """
        if not self.has_edge(u, v):
            raise EdgeError(f"edge {{{u!r}, {v!r}}} is not in the graph")
        return self._adj[u][v]

    def probability_or(self, u: Vertex, v: Vertex, default: float = 0.0) -> float:
        """Return ``p({u, v})`` or ``default`` when the edge is absent."""
        if u in self._adj:
            return self._adj[u].get(v, default)
        return default

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices."""
        return iter(self._adj)

    def edges(self) -> Iterator[tuple[Vertex, Vertex, float]]:
        """Iterate over ``(u, v, p)`` triples, each edge exactly once."""
        seen: set[Edge] = set()
        for u, nbrs in self._adj.items():
            for v, p in nbrs.items():
                e = normalize_edge(u, v)
                if e not in seen:
                    seen.add(e)
                    yield (*e, p)

    def neighbors(self, v: Vertex) -> set[Vertex]:
        """Return the neighborhood ``Γ(v)`` as a new set.

        Raises
        ------
        VertexError
            If ``v`` is not a vertex of the graph.
        """
        if v not in self._adj:
            raise VertexError(f"vertex {v!r} is not in the graph")
        return set(self._adj[v])

    def neighbor_probabilities(self, v: Vertex) -> dict[Vertex, float]:
        """Return a copy of the mapping neighbor → edge probability for ``v``."""
        if v not in self._adj:
            raise VertexError(f"vertex {v!r} is not in the graph")
        return dict(self._adj[v])

    def adjacency(self, v: Vertex) -> dict[Vertex, float]:
        """Return the internal adjacency mapping of ``v`` (no copy).

        This is the hot-path accessor used by the enumeration algorithms.
        Callers must not mutate the returned mapping.
        """
        if v not in self._adj:
            raise VertexError(f"vertex {v!r} is not in the graph")
        return self._adj[v]

    def degree(self, v: Vertex) -> int:
        """Return ``|Γ(v)|`` (the number of possible edges at ``v``)."""
        if v not in self._adj:
            raise VertexError(f"vertex {v!r} is not in the graph")
        return len(self._adj[v])

    def expected_degree(self, v: Vertex) -> float:
        """Return the expected degree of ``v``, ``Σ_{u ∈ Γ(v)} p({u, v})``."""
        if v not in self._adj:
            raise VertexError(f"vertex {v!r} is not in the graph")
        return sum(self._adj[v].values())

    # ------------------------------------------------------------------ #
    # Clique-related queries
    # ------------------------------------------------------------------ #
    def is_clique(self, vertices: Iterable[Vertex]) -> bool:
        """Return ``True`` when every pair in ``vertices`` is a possible edge.

        This is clique-ness of the *skeleton* ``(V, E)``; whether the set is
        an α-clique additionally depends on the edge probabilities (see
        :meth:`clique_probability`).
        """
        vs = list(vertices)
        for v in vs:
            if v not in self._adj:
                raise VertexError(f"vertex {v!r} is not in the graph")
        for i, u in enumerate(vs):
            nbrs = self._adj[u]
            for v in vs[i + 1 :]:
                if v not in nbrs:
                    return False
        return True

    def clique_probability(self, vertices: Iterable[Vertex]) -> float:
        """Return ``clq(C, G)``, the probability that ``vertices`` form a clique.

        Implements Observation 1 of the paper: when the set is a clique of
        the skeleton the probability is the product of its edge
        probabilities, and it is ``0.0`` when any required edge is missing.
        The empty set and singletons have clique probability ``1.0``.

        >>> g = UncertainGraph(edges=[(1, 2, 0.5), (2, 3, 0.5), (1, 3, 0.5)])
        >>> g.clique_probability([1, 2, 3])
        0.125
        """
        vs = list(vertices)
        for u in vs:
            if u not in self._adj:
                raise VertexError(f"vertex {u!r} is not in the graph")
        product = 1.0
        for i, u in enumerate(vs):
            nbrs = self._adj[u]
            for v in vs[i + 1 :]:
                p = nbrs.get(v)
                if p is None:
                    return 0.0
                product *= p
        return product

    def is_alpha_clique(self, vertices: Iterable[Vertex], alpha: float) -> bool:
        """Return ``True`` when ``vertices`` form an α-clique (Definition 3)."""
        alpha = validate_probability(alpha, what="alpha")
        return self.clique_probability(vertices) >= alpha

    def common_neighbors(self, u: Vertex, v: Vertex) -> set[Vertex]:
        """Return ``Γ(u) ∩ Γ(v)``."""
        if u not in self._adj:
            raise VertexError(f"vertex {u!r} is not in the graph")
        if v not in self._adj:
            raise VertexError(f"vertex {v!r} is not in the graph")
        small, large = (
            (self._adj[u], self._adj[v])
            if len(self._adj[u]) <= len(self._adj[v])
            else (self._adj[v], self._adj[u])
        )
        return {w for w in small if w in large}

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #
    def skeleton(self) -> Graph:
        """Return the deterministic skeleton ``(V, E)`` (probabilities dropped)."""
        g = Graph(vertices=self._adj)
        for u, v, _ in self.edges():
            g.add_edge(u, v)
        return g

    def subgraph(self, vertices: Iterable[Vertex]) -> "UncertainGraph":
        """Return the uncertain subgraph induced by ``vertices``.

        Vertices not present in the graph are ignored.
        """
        keep = {v for v in vertices if v in self._adj}
        sub = UncertainGraph(vertices=keep)
        for u in keep:
            for v, p in self._adj[u].items():
                if v in keep:
                    sub.add_edge(u, v, p)
        return sub

    def copy(self) -> "UncertainGraph":
        """Return a deep structural copy."""
        g = UncertainGraph()
        g._adj = {v: dict(nbrs) for v, nbrs in self._adj.items()}
        return g

    def relabeled(
        self,
    ) -> tuple["UncertainGraph", dict[Vertex, int], dict[int, Vertex]]:
        """Return an integer-labelled copy plus forward/backward label maps.

        Vertices are numbered ``1..n`` in sorted order (falling back to
        ``repr`` order for non-orderable labels), matching the paper's
        assumption that vertex identifiers are ``1, 2, ..., n``.
        """
        try:
            ordered = sorted(self._adj)
        except TypeError:
            ordered = sorted(self._adj, key=lambda v: (type(v).__name__, repr(v)))
        forward = {v: i + 1 for i, v in enumerate(ordered)}
        backward = {i: v for v, i in forward.items()}
        g = UncertainGraph(vertices=forward.values())
        for u, v, p in self.edges():
            g.add_edge(forward[u], forward[v], p)
        return g, forward, backward

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #
    def fingerprint(self) -> str:
        """Return a stable content hash of the graph (SHA-256 hex digest).

        The hash covers the sorted vertex labels, the sorted edge set and
        the exact bit pattern of every edge probability (``float.hex``), so
        it is independent of insertion order and edge direction: two graphs
        that compare ``==`` produce the same fingerprint.  Numeric labels
        are encoded by value — ``1``, ``1.0`` and ``True`` are the same
        vertex, matching dict-key equality; exotic cross-type-equal labels
        outside int/float/bool (e.g. ``Decimal(1)`` vs ``1``) may still
        hash apart.  It is the key used by shared
        :class:`repro.api.CompiledGraphCache` instances for compiled-graph
        reuse across sessions, and is useful standalone for dataset
        deduplication.

        The fingerprint is recomputed on every call (the graph is mutable);
        cost is O((n + m) log(n + m)).

        >>> a = UncertainGraph(edges=[(1, 2, 0.5), (2, 3, 0.25)])
        >>> b = UncertainGraph(edges=[(3, 2, 0.25), (2, 1, 0.5)])
        >>> a.fingerprint() == b.fingerprint()
        True
        >>> a.fingerprint() == UncertainGraph(edges=[(1, 2, 0.5)]).fingerprint()
        False
        """
        try:
            ordered = sorted(self._adj)
        except TypeError:
            # Canonical-label order (not the compile stage's type/repr
            # order): the fingerprint must assign equal labels equal
            # positions regardless of their concrete type.
            ordered = sorted(self._adj, key=_canonical_label)
        index_of = {v: i for i, v in enumerate(ordered)}
        digest = hashlib.sha256()
        digest.update(b"V")
        for v in ordered:
            digest.update(_canonical_label(v).encode("utf-8", "backslashreplace"))
            digest.update(b"\n")
        digest.update(b"E")
        edges: list[tuple[int, int, float]] = []
        for u, nbrs in self._adj.items():
            iu = index_of[u]
            for v, p in nbrs.items():
                iv = index_of[v]
                if iu < iv:
                    edges.append((iu, iv, p))
        edges.sort()
        for iu, iv, p in edges:
            digest.update(f"{iu} {iv} {float(p).hex()}\n".encode("ascii"))
        return digest.hexdigest()

    # ------------------------------------------------------------------ #
    # Summary statistics
    # ------------------------------------------------------------------ #
    def density(self) -> float:
        """Return the skeleton edge density ``2m / (n(n-1))``."""
        n = self.num_vertices
        if n < 2:
            return 0.0
        return 2.0 * self.num_edges / (n * (n - 1))

    def expected_num_edges(self) -> float:
        """Return the expected number of edges in a sampled possible world."""
        return sum(p for _, _, p in self.edges())

    def min_probability(self) -> float:
        """Return the smallest edge probability (1.0 for an edgeless graph)."""
        return min((p for _, _, p in self.edges()), default=1.0)

    def max_probability(self) -> float:
        """Return the largest edge probability (1.0 for an edgeless graph)."""
        return max((p for _, _, p in self.edges()), default=1.0)

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #
    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UncertainGraph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:
        return f"UncertainGraph(n={self.num_vertices}, m={self.num_edges})"
