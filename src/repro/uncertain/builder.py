"""Fluent construction helpers for uncertain graphs.

:class:`UncertainGraphBuilder` validates inputs eagerly and supports common
construction idioms used throughout the examples and benchmarks:

* building from ``(u, v, p)`` triples or an existing deterministic skeleton,
* assigning probabilities from a callable model (see
  :mod:`repro.generators.probabilities`),
* deduplicating repeated edges with a configurable merge policy.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable

from ..deterministic.graph import Graph, normalize_edge
from ..errors import EdgeError, ParameterError
from .graph import UncertainGraph, validate_probability

__all__ = ["UncertainGraphBuilder", "from_skeleton", "from_edge_triples"]

Vertex = Hashable
ProbabilityModel = Callable[[Vertex, Vertex], float]

_MERGE_POLICIES = ("error", "keep-first", "keep-last", "max", "min")


class UncertainGraphBuilder:
    """Incrementally build an :class:`~repro.uncertain.graph.UncertainGraph`.

    Parameters
    ----------
    merge_policy:
        What to do when the same edge is added twice with different
        probabilities.  One of ``"error"`` (default), ``"keep-first"``,
        ``"keep-last"``, ``"max"`` or ``"min"``.

    Examples
    --------
    >>> b = UncertainGraphBuilder()
    >>> g = b.add_edge(1, 2, 0.9).add_edge(2, 3, 0.8).build()
    >>> g.num_edges
    2
    """

    def __init__(self, merge_policy: str = "error") -> None:
        if merge_policy not in _MERGE_POLICIES:
            raise ParameterError(
                f"merge_policy must be one of {_MERGE_POLICIES}, got {merge_policy!r}"
            )
        self._merge_policy = merge_policy
        self._vertices: set[Vertex] = set()
        self._edges: dict[tuple, float] = {}

    def add_vertex(self, v: Vertex) -> "UncertainGraphBuilder":
        """Register an (possibly isolated) vertex and return ``self``."""
        self._vertices.add(v)
        return self

    def add_vertices(self, vs: Iterable[Vertex]) -> "UncertainGraphBuilder":
        """Register many vertices and return ``self``."""
        self._vertices.update(vs)
        return self

    def add_edge(self, u: Vertex, v: Vertex, probability: float) -> "UncertainGraphBuilder":
        """Add an edge with its probability, applying the merge policy on repeats."""
        p = validate_probability(probability)
        key = normalize_edge(u, v)
        if key in self._edges:
            existing = self._edges[key]
            if self._merge_policy == "error":
                raise EdgeError(
                    f"edge {key!r} added twice (p={existing} then p={p}) "
                    "with merge_policy='error'"
                )
            if self._merge_policy == "keep-first":
                return self
            if self._merge_policy == "max":
                p = max(existing, p)
            elif self._merge_policy == "min":
                p = min(existing, p)
            # "keep-last" simply overwrites.
        self._edges[key] = p
        self._vertices.add(u)
        self._vertices.add(v)
        return self

    def add_edges(
        self, triples: Iterable[tuple[Vertex, Vertex, float]]
    ) -> "UncertainGraphBuilder":
        """Add many ``(u, v, p)`` triples and return ``self``."""
        for u, v, p in triples:
            self.add_edge(u, v, p)
        return self

    @property
    def num_vertices(self) -> int:
        """Number of vertices registered so far."""
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        """Number of distinct edges registered so far."""
        return len(self._edges)

    def build(self) -> UncertainGraph:
        """Construct and return the uncertain graph."""
        graph = UncertainGraph(vertices=self._vertices)
        for (u, v), p in self._edges.items():
            graph.add_edge(u, v, p)
        return graph


def from_skeleton(
    skeleton: Graph, probability_model: ProbabilityModel
) -> UncertainGraph:
    """Build an uncertain graph from a deterministic skeleton.

    Each edge ``{u, v}`` of ``skeleton`` receives probability
    ``probability_model(u, v)``.  This mirrors the paper's construction of
    "semi-synthetic" uncertain graphs, where SNAP graphs were assigned
    probabilities uniformly at random.

    >>> from repro.deterministic.graph import Graph
    >>> g = from_skeleton(Graph(edges=[(1, 2)]), lambda u, v: 0.7)
    >>> g.probability(1, 2)
    0.7
    """
    graph = UncertainGraph(vertices=skeleton.vertices())
    for u, v in skeleton.edges():
        graph.add_edge(u, v, probability_model(u, v))
    return graph


def from_edge_triples(
    triples: Iterable[tuple[Vertex, Vertex, float]],
    *,
    merge_policy: str = "error",
) -> UncertainGraph:
    """Build an uncertain graph from ``(u, v, p)`` triples in one call."""
    return UncertainGraphBuilder(merge_policy=merge_policy).add_edges(triples).build()
