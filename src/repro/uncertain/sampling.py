"""Possible-world semantics: sampling and exact world enumeration.

An uncertain graph ``G = (V, E, p)`` represents a distribution over the
``2^m`` deterministic subgraphs of its skeleton (Section 2 of the paper).
This module provides:

* :func:`sample_possible_world` — draw one possible world by flipping each
  edge independently (the paper notes this is how sampling is performed),
* :func:`sample_possible_worlds` — an iterator of i.i.d. samples,
* :func:`enumerate_possible_worlds` — exact enumeration of all worlds with
  their probabilities (exponential; only for tiny graphs and for tests),
* :func:`estimate_clique_probability` — Monte-Carlo estimate of
  ``clq(C, G)``, used in tests to cross-validate the exact product formula
  of Observation 1,
* :func:`world_probability` — the probability of one specific world.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Hashable, Iterable, Iterator

from ..deterministic.graph import Graph
from ..errors import ParameterError
from .graph import UncertainGraph

__all__ = [
    "sample_possible_world",
    "sample_possible_worlds",
    "enumerate_possible_worlds",
    "estimate_clique_probability",
    "world_probability",
]

Vertex = Hashable


def sample_possible_world(
    graph: UncertainGraph, rng: random.Random | int | None = None
) -> Graph:
    """Sample one possible world of ``graph``.

    Each edge ``e`` is included independently with probability ``p(e)``.
    Vertices are always retained, so the sampled graph has the same vertex
    set as the uncertain graph.

    Parameters
    ----------
    graph:
        The uncertain graph to sample from.
    rng:
        A :class:`random.Random` instance, an integer seed, or ``None`` for
        a fresh non-deterministic generator.
    """
    rng = _coerce_rng(rng)
    world = Graph(vertices=graph.vertices())
    for u, v, p in graph.edges():
        if rng.random() < p:
            world.add_edge(u, v)
    return world


def sample_possible_worlds(
    graph: UncertainGraph,
    count: int,
    rng: random.Random | int | None = None,
) -> Iterator[Graph]:
    """Yield ``count`` independent possible worlds of ``graph``.

    Raises
    ------
    ParameterError
        If ``count`` is negative.
    """
    if count < 0:
        raise ParameterError(f"count must be non-negative, got {count}")
    rng = _coerce_rng(rng)
    for _ in range(count):
        yield sample_possible_world(graph, rng)


def enumerate_possible_worlds(
    graph: UncertainGraph, *, max_edges: int = 20
) -> Iterator[tuple[Graph, float]]:
    """Enumerate every possible world together with its probability.

    The number of worlds is ``2^m``; the function refuses to run on graphs
    with more than ``max_edges`` edges to protect callers from accidental
    exponential blow-ups.

    Raises
    ------
    ParameterError
        If the graph has more than ``max_edges`` edges.

    >>> g = UncertainGraph(edges=[(1, 2, 0.25)])
    >>> sorted(round(p, 2) for _, p in enumerate_possible_worlds(g))
    [0.25, 0.75]
    """
    edges = list(graph.edges())
    if len(edges) > max_edges:
        raise ParameterError(
            f"refusing to enumerate 2^{len(edges)} possible worlds "
            f"(limit is 2^{max_edges}); raise max_edges explicitly if intended"
        )
    vertices = list(graph.vertices())
    for included in itertools.product((False, True), repeat=len(edges)):
        world = Graph(vertices=vertices)
        probability = 1.0
        for (u, v, p), present in zip(edges, included):
            if present:
                world.add_edge(u, v)
                probability *= p
            else:
                probability *= 1.0 - p
        yield world, probability


def world_probability(graph: UncertainGraph, world: Graph) -> float:
    """Return the probability that sampling ``graph`` yields exactly ``world``.

    ``world`` must be a subgraph of the skeleton; any edge of ``world`` not
    present as a possible edge makes the probability ``0.0``.
    """
    probability = 1.0
    world_edges = {frozenset(e) for e in world.edges()}
    for u, v, p in graph.edges():
        if frozenset((u, v)) in world_edges:
            probability *= p
        else:
            probability *= 1.0 - p
    # Edges in the world that are impossible under the model.
    possible = {frozenset((u, v)) for u, v, _ in graph.edges()}
    for e in world_edges:
        if e not in possible:
            return 0.0
    return probability


def estimate_clique_probability(
    graph: UncertainGraph,
    vertices: Iterable[Vertex],
    *,
    samples: int = 1000,
    rng: random.Random | int | None = None,
) -> float:
    """Monte-Carlo estimate of ``clq(C, G)``.

    Draws ``samples`` possible worlds and returns the fraction in which
    ``vertices`` induce a clique.  Used in tests to validate the exact
    product formula; the exact :meth:`UncertainGraph.clique_probability`
    should always be preferred in algorithms.

    Raises
    ------
    ParameterError
        If ``samples`` is not positive.
    """
    if samples <= 0:
        raise ParameterError(f"samples must be positive, got {samples}")
    rng = _coerce_rng(rng)
    target = list(vertices)
    hits = 0
    for world in sample_possible_worlds(graph, samples, rng):
        if world.is_clique(target):
            hits += 1
    return hits / samples


def _coerce_rng(rng: random.Random | int | None) -> random.Random:
    """Normalise the ``rng`` argument accepted throughout this module."""
    if rng is None:
        return random.Random()
    if isinstance(rng, random.Random):
        return rng
    return random.Random(rng)
