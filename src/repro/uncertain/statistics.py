"""Summary statistics for uncertain graphs.

Used by the Table 1 reproduction (dataset inventory) and by the dataset
generators to verify that synthetic analogs match the structural regime of
the graphs used in the paper (vertex/edge counts, degree skew, probability
distribution).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field

from .graph import UncertainGraph

__all__ = [
    "GraphSummary",
    "summarize",
    "degree_histogram",
    "probability_histogram",
    "expected_degree_by_vertex",
]


@dataclass(frozen=True)
class GraphSummary:
    """A compact structural summary of an uncertain graph.

    Attributes
    ----------
    num_vertices / num_edges:
        The ``n`` and ``m`` of Table 1.
    density:
        Skeleton edge density ``2m / (n(n-1))``.
    min_degree / max_degree / mean_degree:
        Degree statistics of the skeleton.
    mean_probability / min_probability / max_probability:
        Statistics of the edge probability values.
    expected_edges:
        Expected number of edges of a sampled possible world.
    """

    num_vertices: int
    num_edges: int
    density: float
    min_degree: int
    max_degree: int
    mean_degree: float
    mean_probability: float
    min_probability: float
    max_probability: float
    expected_edges: float

    def as_table_row(self, name: str = "", category: str = "") -> dict[str, object]:
        """Return a dict matching the columns of the paper's Table 1."""
        return {
            "Input Graph": name,
            "Category": category,
            "# Vertices": self.num_vertices,
            "# Edges": self.num_edges,
        }


def summarize(graph: UncertainGraph) -> GraphSummary:
    """Compute a :class:`GraphSummary` for ``graph``.

    >>> g = UncertainGraph(edges=[(1, 2, 0.5), (2, 3, 0.75)])
    >>> s = summarize(g)
    >>> (s.num_vertices, s.num_edges, s.max_degree)
    (3, 2, 2)
    """
    n = graph.num_vertices
    m = graph.num_edges
    degrees = [graph.degree(v) for v in graph.vertices()]
    probabilities = [p for _, _, p in graph.edges()]
    return GraphSummary(
        num_vertices=n,
        num_edges=m,
        density=graph.density(),
        min_degree=min(degrees, default=0),
        max_degree=max(degrees, default=0),
        mean_degree=(sum(degrees) / n) if n else 0.0,
        mean_probability=(sum(probabilities) / m) if m else 0.0,
        min_probability=min(probabilities, default=0.0),
        max_probability=max(probabilities, default=0.0),
        expected_edges=sum(probabilities),
    )


def degree_histogram(graph: UncertainGraph) -> dict[int, int]:
    """Return a mapping from skeleton degree to the number of vertices with it."""
    counts = Counter(graph.degree(v) for v in graph.vertices())
    return dict(sorted(counts.items()))


def probability_histogram(graph: UncertainGraph, *, bins: int = 10) -> dict[str, int]:
    """Bucket edge probabilities into ``bins`` equal-width bins over (0, 1].

    The returned dict maps human-readable bin labels, e.g. ``"(0.4, 0.5]"``,
    to edge counts.  Empty bins are included so the histogram shape is stable
    across graphs.
    """
    if bins <= 0:
        raise ValueError(f"bins must be positive, got {bins}")
    counts = [0] * bins
    for _, _, p in graph.edges():
        index = min(bins - 1, int(math.floor(p * bins - 1e-12)))
        counts[index] += 1
    labels = {}
    for i, c in enumerate(counts):
        lo = i / bins
        hi = (i + 1) / bins
        labels[f"({lo:.2f}, {hi:.2f}]"] = c
    return labels


def expected_degree_by_vertex(graph: UncertainGraph) -> dict[object, float]:
    """Return the expected degree of every vertex."""
    return {v: graph.expected_degree(v) for v in graph.vertices()}


def global_clustering_coefficient(graph: UncertainGraph) -> float:
    """Return the skeleton's global clustering coefficient (transitivity).

    The coefficient is ``3 · #triangles / #connected-triples`` and ignores
    edge probabilities.  It separates the clique-rich collaboration /
    PPI-complex regime (high transitivity) from overlay networks such as the
    Gnutella graphs (near-zero transitivity), which is the structural
    property that drives the difference in clique counts across the paper's
    datasets.  Returns 0.0 when the graph has no connected triple.
    """
    triangles = 0
    triples = 0
    for v in graph.vertices():
        neighbors = list(graph.adjacency(v))
        d = len(neighbors)
        triples += d * (d - 1) // 2
        for i, a in enumerate(neighbors):
            adjacency_a = graph.adjacency(a)
            for b in neighbors[i + 1 :]:
                if b in adjacency_a:
                    triangles += 1
    if triples == 0:
        return 0.0
    # Each triangle is counted once per corner vertex, i.e. three times.
    return triangles / triples
