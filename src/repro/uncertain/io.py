"""Serialization of uncertain graphs.

Three formats are supported:

* **Probabilistic edge list** (text): one edge per line, ``u v p`` separated
  by whitespace, ``#`` comments allowed.  This is the format commonly used
  to distribute uncertain graph datasets (e.g. the STRING / BioGRID derived
  PPI networks referenced by the paper).
* **JSON**: a dictionary with explicit vertex and edge lists, convenient for
  configuration-driven pipelines.
* **networkx interop**: conversion to/from :class:`networkx.Graph` with the
  probability stored in a configurable edge attribute.  The networkx import
  is deferred so the core library has no hard dependency on it.
"""

from __future__ import annotations

import json
from collections.abc import Hashable
from pathlib import Path
from typing import Any

from ..errors import FormatError
from .graph import UncertainGraph, validate_probability

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "to_json",
    "from_json",
    "write_json",
    "read_json",
    "to_networkx",
    "from_networkx",
]

Vertex = Hashable


# --------------------------------------------------------------------------- #
# Probabilistic edge-list text format
# --------------------------------------------------------------------------- #
def _edge_list_token(label: Vertex) -> str:
    """Render ``label`` as one whitespace-delimited edge-list token.

    The text format has no quoting or escaping, so a label whose string
    form is empty, contains whitespace (``"protein A"`` would split into
    two fields) or starts with ``#`` (the line would read back as a
    comment) cannot survive a round-trip.  Such labels raise
    :class:`~repro.errors.FormatError` instead of silently writing a file
    the reader rejects — or worse, one it *mis*-reads.
    """
    token = str(label)
    if not token or token.startswith("#") or any(ch.isspace() for ch in token):
        raise FormatError(
            f"vertex label {label!r} cannot be written to the edge-list "
            "format (labels must be non-empty, contain no whitespace and "
            "not start with '#'); use write_json for arbitrary labels"
        )
    return token


def write_edge_list(graph: UncertainGraph, path: str | Path) -> None:
    """Write ``graph`` to ``path`` in the ``u v p`` text format.

    Isolated vertices are recorded as comment lines ``# vertex <label>`` so
    that a round-trip preserves the vertex set exactly.

    Raises
    ------
    FormatError
        If any vertex label cannot be represented as a single edge-list
        token (empty, whitespace-bearing, or ``#``-leading string form) —
        the format has no escaping, so such a file would not read back as
        the same graph.  Nothing is written in that case.
    """
    path = Path(path)
    lines: list[str] = ["# uncertain graph edge list: u v p"]
    connected: set[Vertex] = set()
    for u, v, p in graph.edges():
        lines.append(f"{_edge_list_token(u)} {_edge_list_token(v)} {p!r}")
        connected.add(u)
        connected.add(v)
    for v in graph.vertices():
        if v not in connected:
            lines.append(f"# vertex {_edge_list_token(v)}")
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def read_edge_list(
    path: str | Path, *, vertex_type: type = str
) -> UncertainGraph:
    """Read an uncertain graph from a ``u v p`` text file.

    Parameters
    ----------
    path:
        File to read.
    vertex_type:
        Callable applied to the vertex tokens (``str`` by default, commonly
        ``int`` for numeric datasets).

    Raises
    ------
    FormatError
        If a data line does not have exactly three whitespace-separated
        fields, contains an invalid probability, or an isolated-vertex
        record (``# vertex <label>``) is malformed.  Malformed vertex
        records used to be skipped as ordinary comments, silently dropping
        vertices from the round-trip.
    """
    path = Path(path)
    graph = UncertainGraph()
    for lineno, raw in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line[1:].split()
            if parts and parts[0] == "vertex":
                if len(parts) != 2:
                    raise FormatError(
                        f"{path}:{lineno}: malformed isolated-vertex record "
                        f"{line!r} (expected '# vertex <label>')"
                    )
                try:
                    graph.add_vertex(vertex_type(parts[1]))
                except (TypeError, ValueError) as exc:
                    raise FormatError(
                        f"{path}:{lineno}: cannot parse vertex {parts[1]!r} "
                        f"as {vertex_type.__name__}"
                    ) from exc
            continue
        fields = line.split()
        if len(fields) != 3:
            raise FormatError(
                f"{path}:{lineno}: expected 'u v p', got {line!r}"
            )
        u_token, v_token, p_token = fields
        try:
            probability = float(p_token)
        except ValueError as exc:
            raise FormatError(
                f"{path}:{lineno}: invalid probability {p_token!r}"
            ) from exc
        try:
            u = vertex_type(u_token)
            v = vertex_type(v_token)
        except (TypeError, ValueError) as exc:
            raise FormatError(
                f"{path}:{lineno}: cannot parse vertices {u_token!r}, {v_token!r} "
                f"as {vertex_type.__name__}"
            ) from exc
        graph.add_edge(u, v, validate_probability(probability))
    return graph


# --------------------------------------------------------------------------- #
# JSON format
# --------------------------------------------------------------------------- #
def to_json(graph: UncertainGraph) -> dict[str, Any]:
    """Return a JSON-serialisable dictionary describing ``graph``.

    The payload has the shape::

        {"vertices": [...], "edges": [[u, v, p], ...]}
    """
    return {
        "vertices": list(graph.vertices()),
        "edges": [[u, v, p] for u, v, p in graph.edges()],
    }


def from_json(payload: dict[str, Any]) -> UncertainGraph:
    """Rebuild an uncertain graph from a :func:`to_json` payload.

    Raises
    ------
    FormatError
        If the payload is missing keys or an edge entry is malformed.
    """
    if not isinstance(payload, dict) or "edges" not in payload:
        raise FormatError("JSON payload must be a dict with an 'edges' key")
    graph = UncertainGraph(vertices=payload.get("vertices", []))
    for entry in payload["edges"]:
        if not isinstance(entry, (list, tuple)) or len(entry) != 3:
            raise FormatError(f"edge entry must be [u, v, p], got {entry!r}")
        u, v, p = entry
        graph.add_edge(u, v, validate_probability(float(p)))
    return graph


def write_json(graph: UncertainGraph, path: str | Path) -> None:
    """Serialise ``graph`` to a JSON file at ``path``."""
    Path(path).write_text(json.dumps(to_json(graph), indent=2), encoding="utf-8")


def read_json(path: str | Path) -> UncertainGraph:
    """Load an uncertain graph from a JSON file written by :func:`write_json`."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise FormatError(f"{path}: invalid JSON: {exc}") from exc
    return from_json(payload)


# --------------------------------------------------------------------------- #
# networkx interop
# --------------------------------------------------------------------------- #
def to_networkx(graph: UncertainGraph, *, probability_attr: str = "probability"):
    """Convert to a :class:`networkx.Graph` with probabilities as edge attributes.

    networkx is imported lazily; an informative ImportError is raised when it
    is unavailable.
    """
    import networkx as nx  # deferred import: optional dependency

    nxg = nx.Graph()
    nxg.add_nodes_from(graph.vertices())
    for u, v, p in graph.edges():
        nxg.add_edge(u, v, **{probability_attr: p})
    return nxg


def from_networkx(nxg, *, probability_attr: str = "probability", default: float = 1.0) -> UncertainGraph:
    """Convert a :class:`networkx.Graph` into an uncertain graph.

    Edges lacking the probability attribute receive ``default`` (certain
    edges by default, matching the semantics of a deterministic graph).
    Self-loops are skipped because uncertain graphs are simple.
    """
    graph = UncertainGraph(vertices=nxg.nodes())
    for u, v, data in nxg.edges(data=True):
        if u == v:
            continue
        graph.add_edge(u, v, validate_probability(float(data.get(probability_attr, default))))
    return graph
